package store

import (
	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/wal"
)

// Txn is one exclusive write transaction on a store — the shard router's
// half of a cross-shard group commit. Where Apply decides, logs and
// publishes in one step, a Txn splits the commit so the router can hold
// every shard at the same stage: BeginTxn on all shards (taking each
// writer lock and catching the shadow instance up), Stage the per-shard
// sub-deltas, decide globally (UnstageLast rolls a rejected delta back on
// each participant), Log the accepted ones per shard, then Commit every
// shard under the router's publication lock so the epoch vector advances
// atomically — or Abort/Wedge on the failure paths.
//
// The writer lock is held from BeginTxn until Commit, Abort or Wedge, so
// exactly one of those must be called, exactly once.
type Txn struct {
	st     *Store
	cur    *Snapshot // published snapshot at begin; stable while we hold st.mu
	staged []txnEntry
	wlog   *wal.Log
	pre    wal.LogStats
}

type txnEntry struct {
	sd     *access.StagedDelta
	d      *graph.Delta // private clone: lag-replay source and log payload
	seq    uint64
	shards []int
}

// BeginTxn takes the writer lock and prepares the shadow instance (drains
// the epoch-before-last's readers, replays the lag deltas), exactly like
// a group-commit leader entering commitBatch. It fails with ErrClosed on
// a closed or wedged store.
func (st *Store) BeginTxn() (*Txn, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, ErrClosed
	}
	cur := st.cur.Load()
	if st.shadow == nil {
		st.shadow = &state{g: cur.G.Clone(), idx: cur.Idx.Clone()}
	}
	st.waitDrained(st.prev)
	st.prev = nil
	for _, ld := range st.lag {
		if err := st.shadow.idx.ReplayDelta(st.shadow.g, ld.d, ld.rows); err != nil {
			panic("store: lag replay diverged: " + err.Error())
		}
	}
	st.lag = nil
	return &Txn{st: st, cur: cur}, nil
}

// Graph returns the staged (shadow) graph — the caught-up state deltas
// stage onto. The router's delta splitter reads it for validation and
// stub construction. Valid only while the transaction is open.
func (t *Txn) Graph() *graph.Graph { return t.st.shadow.g }

// Index returns the staged (shadow) index set. The router reads entry
// sizes from it to aggregate cardinality bounds across shards.
func (t *Txn) Index() *access.IndexSet { return t.st.shadow.idx }

// Stage applies one sub-delta to the shadow state, deferring the verdict.
// seq and shards are the envelope metadata logged with the delta (the
// router-wide update sequence number and the participant shards). The
// transaction takes ownership of d — it becomes the lag-replay source
// and log payload, so the caller must not reuse or mutate it afterwards
// (the router hands over freshly split sub-deltas). On a structural
// error nothing is staged. A staged delta must be settled — by
// UnstageLast, or by the transaction-level Commit/Abort — before the
// next Stage's rollback can be valid.
func (t *Txn) Stage(d *graph.Delta, seq uint64, shards []int) (*access.StagedDelta, error) {
	sd, err := t.st.shadow.idx.StageDelta(t.st.shadow.g, d)
	if err != nil {
		return nil, err
	}
	t.staged = append(t.staged, txnEntry{sd: sd, d: d, seq: seq, shards: shards})
	return sd, nil
}

// UnstageLast rolls back the most recently staged delta — the rejection
// path of the router's all-or-nothing verdict, called on every
// participant of a delta whose aggregated bounds failed.
func (t *Txn) UnstageLast() {
	n := len(t.staged)
	e := t.staged[n-1]
	t.staged = t.staged[:n-1]
	e.sd.Rollback()
}

// Log appends one envelope record per staged delta at the given epoch
// (the router's global sequence number) and, when the store syncs,
// fsyncs once — this shard's durability point. It returns the post-record
// log offsets in staged order; on a store without a WAL the offsets are
// zero. On error the caller must RewindLog every shard already logged
// and Wedge the stores.
func (t *Txn) Log(epoch uint64) ([]int64, error) {
	offs := make([]int64, len(t.staged))
	if t.st.dur == nil {
		return offs, nil
	}
	t.wlog = t.st.dur.Log()
	t.pre = t.wlog.Stats()
	for i, e := range t.staged {
		if t.st.hookAppend != nil {
			if err := t.st.hookAppend(i); err != nil {
				return nil, err
			}
		}
		env := &wal.Envelope{Seq: e.seq, Shards: e.shards, AddIDs: e.d.AddNodeIDs, Delta: e.d}
		off, err := t.wlog.AppendEnvelope(epoch, env)
		if err != nil {
			return nil, err
		}
		offs[i] = off
	}
	if t.st.fsync {
		if err := t.wlog.Sync(); err != nil {
			return nil, err
		}
	}
	return offs, nil
}

// RewindLog durably discards the records this transaction appended — the
// cleanup when another shard's Log failed and the batch, already refused
// to its callers, must not survive to be replayed by recovery.
func (t *Txn) RewindLog() error {
	if t.wlog == nil {
		return nil
	}
	return t.wlog.Rewind(t.pre)
}

// Commit publishes the staged deltas as the given epoch and releases the
// writer lock. With nothing staged (the shard sat this batch out) no new
// snapshot is published — the shard's epoch simply skips the global
// sequence number. The router calls Commit on every shard under its
// publication write lock, so queries pinning a cut never observe the
// vector half-advanced.
func (t *Txn) Commit(epoch uint64) {
	st := t.st
	if len(t.staged) == 0 {
		st.mu.Unlock()
		return
	}
	var rows []graph.NodeID
	lag := make([]lagEntry, len(t.staged))
	for i, e := range t.staged {
		touched := e.sd.Result().Touched
		rows = append(rows, touched...)
		lag[i] = lagEntry{d: e.d, rows: st.lagRows(touched)}
	}
	nrows := len(rows)
	if st.ownRow != nil {
		kept := rows[:0]
		for _, v := range rows {
			if st.ownRow(v) {
				kept = append(kept, v)
			}
		}
		rows = kept
	}
	cur := t.cur
	next := &Snapshot{
		G:     st.shadow.g,
		Fz:    cur.Fz.Refresh(st.shadow.g, rows),
		Idx:   st.shadow.idx,
		Epoch: epoch,
		st:    st.shadow,
	}
	st.cur.Store(next)
	st.signalPublish()
	cur.retired.Store(true)
	st.prev = cur
	st.shadow = cur.st
	st.lag = lag
	st.applied.Add(uint64(len(t.staged)))
	st.batches.Add(1)
	st.touched.Add(uint64(nrows))
	st.mu.Unlock()
}

// Abort rolls back every staged delta (newest first) and releases the
// writer lock; the published state is untouched.
func (t *Txn) Abort() {
	for len(t.staged) > 0 {
		t.UnstageLast()
	}
	t.st.mu.Unlock()
}

// Wedge poisons the store after a cross-shard durability failure: the
// staged shadow state is abandoned, writes are permanently refused
// (readers keep the published epoch, exactly like the unsharded wedge
// path), and the writer lock is released.
func (t *Txn) Wedge() {
	t.st.closed = true
	t.st.wedged = true
	t.st.mu.Unlock()
}
