// Package store makes graph updates first-class in the serving path: a
// Store owns a graph plus its access-constraint indexes and publishes an
// immutable epoch Snapshot (graph, frozen CSR, indexes, epoch) after every
// accepted graph.Delta. Readers pick snapshots up with one atomic pointer
// load and pin them for the duration of a query, so in-flight queries keep
// a consistent view while the writer builds the next epoch — the paper's
// §II incremental maintenance (ΔG, NbG(ΔG)) turned into a read/write
// store.
//
// Concurrency design (double-instance copy-on-write): the store keeps two
// full (graph, indexes) instances. The published snapshot is backed by one;
// the writer applies the next delta to the other — first replaying the one
// delta it is behind by — then refreshes the CSR snapshot incrementally
// (graph.Frozen.Refresh, proportional to |NbG(ΔG)|) and swaps the
// published pointer. Before mutating an instance the writer waits for the
// readers still pinning the snapshot that last exposed it, so no query
// ever observes a half-applied epoch. Each accepted delta is applied once
// per instance: O(|ΔG ∪ NbG(ΔG)|) per publish, independent of |G|. The
// second instance is cloned lazily on the first update, so a read-only
// store costs nothing extra.
//
// A delta that fails structurally or would break an access constraint is
// rejected atomically (access.IndexSet.ApplyDeltaTx): the published state
// is bit-for-bit unaffected and no epoch is consumed.
package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/graph"
)

// ErrClosed is returned by Apply after Close.
var ErrClosed = errors.New("store: closed")

// state is one of the two copy-on-write (graph, indexes) instances.
type state struct {
	g   *graph.Graph
	idx *access.IndexSet
}

// Snapshot is one immutable published epoch. Acquire pins it; every
// Acquire must be paired with exactly one Release, after which none of
// the snapshot's fields may be touched — the backing instance is recycled
// for a future epoch once its readers drain.
type Snapshot struct {
	G     *graph.Graph
	Fz    *graph.Frozen
	Idx   *access.IndexSet
	Epoch uint64

	st      *state
	refs    atomic.Int64
	retired atomic.Bool
}

// Release unpins the snapshot.
func (s *Snapshot) Release() { s.refs.Add(-1) }

// Stats are the store's cumulative update counters.
type Stats struct {
	// Epoch is the currently published epoch (0 = the initial state).
	Epoch uint64
	// Applied counts accepted deltas (each published one epoch).
	Applied uint64
	// RejectedViolation counts deltas rejected for breaking an access
	// constraint; RejectedError counts structural rejections (bad node or
	// edge references). Both leave the published state untouched.
	RejectedViolation uint64
	RejectedError     uint64
	// TouchedRows accumulates, over accepted deltas, the rows whose
	// adjacency each delta changed — the per-update maintenance work,
	// bounded by the paper's |ΔG ∪ NbG(ΔG)|.
	TouchedRows uint64
	// LastApplyNS is the wall time of the most recent accepted apply
	// (replay + apply + refresh + publish).
	LastApplyNS int64
}

// Store is the epoch-versioned graph store. Construct with New, read with
// Acquire/Release, write with Apply. One writer at a time (Apply
// serializes internally); any number of concurrent readers.
type Store struct {
	cur atomic.Pointer[Snapshot]

	mu     sync.Mutex // serializes writers and Close
	closed bool
	shadow *state       // instance not backing cur; nil until first Apply
	prev   *Snapshot    // last snapshot that exposed shadow; drained before reuse
	lag    *graph.Delta // delta cur's instance has seen but shadow has not

	applied, rejViol, rejErr, touched atomic.Uint64
	lastApplyNS                       atomic.Int64
}

// New returns a store serving g with its index set idx (which must have
// been built over g and satisfy its schema's bounds). The store takes
// ownership: g and idx must not be read or mutated directly afterwards —
// all access goes through Acquire and Apply.
func New(g *graph.Graph, idx *access.IndexSet) *Store {
	st := &Store{}
	s0 := &state{g: g, idx: idx}
	st.cur.Store(&Snapshot{G: g, Fz: g.Freeze(), Idx: idx, Epoch: 0, st: s0})
	return st
}

// Acquire pins and returns the current snapshot. The caller must Release
// it when done; holding a snapshot blocks the writer from recycling its
// backing instance (two epochs later), so release promptly.
func (st *Store) Acquire() *Snapshot {
	for {
		s := st.cur.Load()
		s.refs.Add(1)
		if !s.retired.Load() {
			return s
		}
		// The writer retired s between our load and pin and may already be
		// waiting to mutate its instance; back out and take the newer one.
		s.refs.Add(-1)
	}
}

// Epoch returns the current epoch without pinning.
func (st *Store) Epoch() uint64 { return st.cur.Load().Epoch }

// Schema returns the access schema (immutable across epochs).
func (st *Store) Schema() *access.Schema { return st.cur.Load().Idx.Schema() }

// Result reports one accepted Apply.
type Result struct {
	// Epoch is the epoch the delta published.
	Epoch uint64
	// NewIDs are the node IDs assigned to the delta's AddNodes.
	NewIDs []graph.NodeID
	// TouchedRows counts the rows whose adjacency the delta changed
	// (edge endpoints, deleted nodes and their neighbors, inserted
	// nodes) — the incrementally maintained work.
	TouchedRows int
}

// Apply applies d atomically and publishes the next epoch. On success the
// returned Result names the new epoch; the new snapshot is visible to
// Acquire before Apply returns. A delta that fails structurally or breaks
// an access constraint (a *access.ViolationError) is rejected with the
// published state untouched and no epoch consumed.
//
// Writers serialize; the accepted-path cost is O(|ΔG ∪ NbG(ΔG)|) per
// instance plus waiting out readers still pinning the epoch before last.
// The first Apply also pays a one-off O(|G|) clone of the second
// instance.
func (st *Store) Apply(d *graph.Delta) (Result, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return Result{}, ErrClosed
	}
	started := time.Now()
	cur := st.cur.Load()
	if st.shadow == nil {
		// First update ever: materialize the second instance.
		st.shadow = &state{g: cur.G.Clone(), idx: cur.Idx.Clone()}
	}
	// The shadow instance may still be pinned by readers of the epoch that
	// last exposed it; they must drain before we mutate under them.
	st.waitDrained(st.prev)
	st.prev = nil
	if st.lag != nil {
		// Catch the shadow up with the delta the published instance has
		// already absorbed. It was accepted there, and the instances were
		// identical before it, so it must replay cleanly.
		if _, err := st.shadow.idx.ApplyDeltaTx(st.shadow.g, st.lag); err != nil {
			panic("store: lag replay diverged: " + err.Error())
		}
		st.lag = nil
	}
	res, err := st.shadow.idx.ApplyDeltaTx(st.shadow.g, d)
	if err != nil {
		var verr *access.ViolationError
		if errors.As(err, &verr) {
			st.rejViol.Add(1)
		} else {
			st.rejErr.Add(1)
		}
		return Result{}, err
	}
	next := &Snapshot{
		G:     st.shadow.g,
		Fz:    cur.Fz.Refresh(st.shadow.g, res.Touched), // Touched includes the new IDs
		Idx:   st.shadow.idx,
		Epoch: cur.Epoch + 1,
		st:    st.shadow,
	}
	st.cur.Store(next)
	cur.retired.Store(true)
	st.prev = cur
	st.shadow = cur.st
	// Keep a private copy for the lag replay: the caller is free to reuse
	// or mutate d after Apply returns, and the replay must reproduce the
	// exact delta the published instance absorbed.
	st.lag = d.Clone()

	st.applied.Add(1)
	st.touched.Add(uint64(len(res.Touched)))
	st.lastApplyNS.Store(time.Since(started).Nanoseconds())
	return Result{Epoch: next.Epoch, NewIDs: res.NewIDs, TouchedRows: len(res.Touched)}, nil
}

// waitDrained blocks until no reader pins s. s is already retired, so no
// new pins can land (Acquire backs out of retired snapshots).
func (st *Store) waitDrained(s *Snapshot) {
	if s == nil {
		return
	}
	for backoff := time.Microsecond; s.refs.Load() > 0; {
		time.Sleep(backoff)
		if backoff < time.Millisecond {
			backoff *= 2
		}
	}
}

// Close bars further updates. Readers are unaffected: already-acquired
// snapshots stay valid and Acquire keeps serving the final epoch.
func (st *Store) Close() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
}

// Stats returns a snapshot of the store's cumulative counters.
func (st *Store) Stats() Stats {
	return Stats{
		Epoch:             st.Epoch(),
		Applied:           st.applied.Load(),
		RejectedViolation: st.rejViol.Load(),
		RejectedError:     st.rejErr.Load(),
		TouchedRows:       st.touched.Load(),
		LastApplyNS:       st.lastApplyNS.Load(),
	}
}
