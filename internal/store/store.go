package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/wal"
)

// ErrClosed is returned by Apply after Close, and by every write once the
// store has wedged on a WAL failure.
var ErrClosed = errors.New("store: closed")

// ErrNotDurable is returned by Checkpoint on a store without a WAL.
var ErrNotDurable = errors.New("store: no WAL attached")

// ErrWedged is the error of a batch whose WAL append or fsync failed: the
// epoch was never published and the store closed itself to further writes
// (readers keep the last durable state). It wraps ErrClosed so callers
// that map "store not accepting writes" (e.g. the server's 503) catch
// both with one errors.Is.
var ErrWedged = fmt.Errorf("%w: write-ahead log failed", ErrClosed)

// state is one of the two copy-on-write (graph, indexes) instances.
type state struct {
	g   *graph.Graph
	idx *access.IndexSet
}

// Snapshot is one immutable published epoch. Acquire pins it; every
// Acquire must be paired with exactly one Release, after which none of
// the snapshot's fields may be touched — the backing instance is recycled
// for a future epoch once its readers drain.
type Snapshot struct {
	G     *graph.Graph
	Fz    *graph.Frozen
	Idx   *access.IndexSet
	Epoch uint64

	st      *state
	refs    atomic.Int64
	retired atomic.Bool
}

// Release unpins the snapshot.
func (s *Snapshot) Release() { s.refs.Add(-1) }

// Stats are the store's cumulative update counters.
type Stats struct {
	// Epoch is the currently published epoch (the base epoch when nothing
	// has been applied).
	Epoch uint64
	// Applied counts accepted deltas; Batches counts the group commits
	// that published them. Batches == Applied means no coalescing
	// happened (serial writers); under concurrent bursts Batches drops
	// below Applied — the per-delta share of the fixed epoch costs.
	Applied uint64
	Batches uint64
	// RejectedViolation counts deltas rejected for breaking an access
	// constraint; RejectedError counts structural rejections (bad node or
	// edge references). Both leave the published state untouched.
	RejectedViolation uint64
	RejectedError     uint64
	// TouchedRows accumulates, over accepted deltas, the rows whose
	// adjacency each delta changed — the per-update maintenance work,
	// bounded by the paper's |ΔG ∪ NbG(ΔG)|.
	TouchedRows uint64
	// LastApplyNS is the wall time of the most recent group commit
	// (replay + apply + log + refresh + publish, for the whole batch).
	LastApplyNS int64
	// QueueDepth is the number of Apply calls waiting in the group-commit
	// queue at observation time.
	QueueDepth int

	// Durable reports whether a WAL is attached; the remaining fields are
	// zero without one. WALOffset is the committed log offset, WALRecords
	// and WALSyncs the records appended and fsyncs issued on the current
	// log (both reset at checkpoints, which rotate the log), and
	// LastCheckpointEpoch the epoch of the newest checkpoint snapshot.
	Durable             bool
	WALOffset           int64
	WALRecords          uint64
	WALSyncs            uint64
	LastCheckpointEpoch uint64
}

// commitReq is one Apply call waiting in the group-commit queue.
type commitReq struct {
	d    *graph.Delta
	res  Result
	err  error
	done chan struct{}
}

// lagEntry is one delta the published instance has absorbed but the
// shadow has not, plus the row set its accepted stage maintained — the
// inputs of access.IndexSet.ReplayDelta, which catches the shadow up
// without re-running the transactional accept/reject machinery.
type lagEntry struct {
	d    *graph.Delta
	rows []graph.NodeID
}

// lagRows derives a lag entry's replay row set from the accepted
// stage's Touched set. With an ownership filter installed the non-owned
// rows are dropped: index maintenance is owner-gated on both instances,
// so a stub row's replay would be a no-op probe of empty structures on
// every index — the instances stay identical without it.
func (st *Store) lagRows(touched []graph.NodeID) []graph.NodeID {
	if st.ownRow == nil {
		return touched
	}
	n := 0
	for _, v := range touched {
		if st.ownRow(v) {
			n++
		}
	}
	if n == len(touched) {
		return touched
	}
	kept := make([]graph.NodeID, 0, n)
	for _, v := range touched {
		if st.ownRow(v) {
			kept = append(kept, v)
		}
	}
	return kept
}

// Store is the epoch-versioned graph store. Construct with New, read with
// Acquire/Release, write with Apply. Any number of concurrent readers;
// concurrent writers are grouped into batches (see the package comment).
type Store struct {
	cur atomic.Pointer[Snapshot]

	qmu   sync.Mutex // guards queue; never held while blocking
	queue []*commitReq

	mu     sync.Mutex // serializes batch leaders, checkpoint commits and Close
	ckptMu sync.Mutex // serializes whole Checkpoint calls (writers keep running)
	closed bool
	wedged bool       // a WAL failure poisoned the shadow; writes stay barred
	shadow *state     // instance not backing cur; nil until first Apply
	prev   *Snapshot  // last snapshot that exposed shadow; drained before reuse
	lag    []lagEntry // deltas cur's instance has seen but shadow has not

	dur   *wal.Dir // nil on a non-durable store
	fsync bool

	// ownRow, when set, scopes Frozen refreshes to the rows it accepts
	// (see WithRefreshFilter).
	ownRow func(graph.NodeID) bool

	// clog is the recent-deltas ring behind ChangedSince; nil when
	// disabled (see WithChangeLog).
	clog *ChangeLog

	// hookAppend, when non-nil, runs before the i-th accepted delta's WAL
	// append; a returned error takes the append-failure path. Tests use
	// it to exercise the wedge/rewind machinery.
	hookAppend func(i int) error

	// pubCh is the epoch-publication broadcast channel: closed (and
	// replaced lazily) each time a new snapshot is published. Nil until
	// someone asks; see PublishSignal.
	pubMu sync.Mutex
	pubCh chan struct{}

	applied, batches, rejViol, rejErr, touched atomic.Uint64
	lastApplyNS                                atomic.Int64
	lastCheckpoint                             atomic.Uint64
}

// Option configures New.
type Option func(*Store)

// WithWAL attaches an initialized WAL directory (wal.OpenDir followed by
// Init or Recover, so d.Log() is non-nil): every accepted delta is
// appended to d's log before the epoch containing it is published, and
// fsync selects whether each group commit ends with one fsync (true) or
// leaves flushing to the OS (false — faster, but a host crash can lose
// the most recent commits; a process crash alone loses nothing).
func WithWAL(d *wal.Dir, fsync bool) Option {
	return func(st *Store) {
		st.dur = d
		st.fsync = fsync
		st.lastCheckpoint.Store(d.LastCheckpointEpoch())
	}
}

// WithRefreshFilter restricts which touched rows each commit re-reads
// into the CSR snapshot (Frozen). The sharded router serves every
// frozen-adjacency read for a row from the row's owner shard, so a
// non-owner replica (a stub node holding its copy of a cross-shard
// edge) never has its frozen run consulted and need not pay the
// per-commit patch for it. Only the Frozen refresh scope is affected —
// the live graph and the indexes are always fully maintained.
func WithRefreshFilter(own func(graph.NodeID) bool) Option {
	return func(st *Store) {
		st.ownRow = own
	}
}

// WithChangeLog sizes the recent-deltas ring behind ChangedSince: the
// store keeps the changed-row/changed-label record of the last `slots`
// published epochs. slots == 0 keeps the default (256 epochs); negative
// disables the ring entirely — ChangedSince then only vouches for the
// no-op span (e == current). The sharded router disables its shard
// stores' rings and keeps one of its own, keyed by global sequence
// number.
func WithChangeLog(slots int) Option {
	return func(st *Store) {
		switch {
		case slots < 0:
			st.clog = nil
		case slots == 0:
			st.clog = NewChangeLog(defaultChangeLogSlots)
		default:
			st.clog = NewChangeLog(slots)
		}
	}
}

// WithBaseEpoch makes the store publish its initial state as the given
// epoch instead of 0 — after WAL recovery, the epoch replay ended on, so
// epoch numbering (the replication cursor) survives restarts.
func WithBaseEpoch(epoch uint64) Option {
	return func(st *Store) {
		s0 := st.cur.Load()
		st.cur.Store(&Snapshot{G: s0.G, Fz: s0.Fz, Idx: s0.Idx, Epoch: epoch, st: s0.st})
	}
}

// New returns a store serving g with its index set idx (which must have
// been built over g and satisfy its schema's bounds). The store takes
// ownership: g and idx must not be read or mutated directly afterwards —
// all access goes through Acquire and Apply.
func New(g *graph.Graph, idx *access.IndexSet, opts ...Option) *Store {
	st := &Store{clog: NewChangeLog(defaultChangeLogSlots)}
	s0 := &state{g: g, idx: idx}
	st.cur.Store(&Snapshot{G: g, Fz: g.Freeze(), Idx: idx, Epoch: 0, st: s0})
	for _, opt := range opts {
		opt(st)
	}
	return st
}

// Acquire pins and returns the current snapshot. The caller must Release
// it when done; holding a snapshot blocks the writer from recycling its
// backing instance (two epochs later), so release promptly.
func (st *Store) Acquire() *Snapshot {
	for {
		s := st.cur.Load()
		s.refs.Add(1)
		if !s.retired.Load() {
			return s
		}
		// The writer retired s between our load and pin and may already be
		// waiting to mutate its instance; back out and take the newer one.
		s.refs.Add(-1)
	}
}

// Epoch returns the current epoch without pinning.
func (st *Store) Epoch() uint64 { return st.cur.Load().Epoch }

// PublishSignal returns a channel that is closed the next time an epoch
// is published (commit, replicated apply, or checkpoint re-anchor). It
// is a one-shot level trigger, not a queue: grab the channel BEFORE
// reading Epoch, act on what Epoch says, then block on the channel —
// that order cannot miss a publication. Consecutive publications may
// coalesce into one close; callers re-read Epoch after each wake.
func (st *Store) PublishSignal() <-chan struct{} {
	st.pubMu.Lock()
	defer st.pubMu.Unlock()
	if st.pubCh == nil {
		st.pubCh = make(chan struct{})
	}
	return st.pubCh
}

// signalPublish wakes PublishSignal waiters. Called after st.cur.Store
// on every publish path; never blocks, so the commit path pays only a
// mutex tap when nobody is subscribed.
func (st *Store) signalPublish() {
	st.pubMu.Lock()
	ch := st.pubCh
	st.pubCh = nil
	st.pubMu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// Schema returns the access schema (immutable across epochs).
func (st *Store) Schema() *access.Schema { return st.cur.Load().Idx.Schema() }

// Result reports one accepted Apply.
type Result struct {
	// Epoch is the epoch the delta published. Concurrently accepted
	// deltas may share it (one group commit = one epoch).
	Epoch uint64
	// NewIDs are the node IDs assigned to the delta's AddNodes.
	NewIDs []graph.NodeID
	// TouchedRows counts the rows whose adjacency the delta changed
	// (edge endpoints, deleted nodes and their neighbors, inserted
	// nodes) — the incrementally maintained work.
	TouchedRows int
	// LogOffset is the WAL offset the delta's record ends at — the
	// update is durable once the log is synced through it. Zero on a
	// store without a WAL.
	LogOffset int64
}

// Apply applies d atomically and publishes it in the next epoch. On
// success the returned Result names that epoch; the snapshot containing
// the delta is visible to Acquire before Apply returns. A delta that
// fails structurally or breaks an access constraint (a
// *access.ViolationError) is rejected with the published state untouched.
//
// Concurrent Apply calls are group-committed: whichever caller takes the
// writer lock first commits every delta queued by then as one epoch, in
// queue order, and the rest return as soon as the batch publishes. The
// accepted-path cost per batch is O(Σ|ΔG ∪ NbG(ΔG)|) per instance plus
// waiting out readers still pinning the epoch before last. The first
// Apply also pays a one-off O(|G|) clone of the second instance.
func (st *Store) Apply(d *graph.Delta) (Result, error) {
	req := &commitReq{d: d, done: make(chan struct{})}
	st.qmu.Lock()
	st.queue = append(st.queue, req)
	st.qmu.Unlock()

	st.lead()

	<-req.done
	return req.res, req.err
}

// lead runs the leader election: every queued caller contends for the
// writer lock; the winner commits the whole queue (possibly including
// requests that arrived after its own). Losers find an empty queue and
// just wait. The lock is released by defer so a panic inside a commit
// (an invariant violation) cannot leave the store deadlocked —
// commitBatch's own guard fails the batch's waiters before the panic
// propagates.
func (st *Store) lead() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.qmu.Lock()
	batch := st.queue
	st.queue = nil
	st.qmu.Unlock()
	if len(batch) > 0 {
		st.commitBatch(batch)
	}
}

// commitBatch runs one group commit under st.mu: per-delta transactional
// apply on the shadow instance, WAL append + one fsync, one CSR refresh,
// one published epoch. Every request's done channel is closed before
// returning.
func (st *Store) commitBatch(batch []*commitReq) {
	settled := false
	var wlog *wal.Log
	var pre wal.LogStats
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		// A panic mid-commit is an invariant violation (diverged lag
		// replay, poisoned maintenance): the epoch never published and
		// the shadow instance is suspect, so bar further writes, rewind
		// any records this batch already appended (the callers are about
		// to be told it failed), and fail the waiters instead of
		// stranding them — then let the panic propagate (lead's deferred
		// unlock releases the writer lock).
		st.closed = true
		st.wedged = true
		if wlog != nil {
			_ = wlog.Rewind(pre)
		}
		if !settled {
			for _, req := range batch {
				if req.err == nil {
					req.err = fmt.Errorf("store: commit panicked: %v", r)
				}
				close(req.done)
			}
		}
		panic(r)
	}()
	finish := func() {
		settled = true
		for _, r := range batch {
			close(r.done)
		}
	}
	if st.closed {
		for _, r := range batch {
			r.err = ErrClosed
		}
		finish()
		return
	}
	started := time.Now()
	cur := st.cur.Load()
	if st.shadow == nil {
		// First update ever: materialize the second instance.
		st.shadow = &state{g: cur.G.Clone(), idx: cur.Idx.Clone()}
	}
	// The shadow instance may still be pinned by readers of the epoch that
	// last exposed it; they must drain before we mutate under them.
	st.waitDrained(st.prev)
	st.prev = nil
	for _, ld := range st.lag {
		// Catch the shadow up with the deltas the published instance has
		// already absorbed. They were accepted there, and the instances
		// were identical before them, so they must replay cleanly.
		if err := st.shadow.idx.ReplayDelta(st.shadow.g, ld.d, ld.rows); err != nil {
			panic("store: lag replay diverged: " + err.Error())
		}
	}
	st.lag = nil

	epoch := cur.Epoch + 1
	var accepted []*commitReq
	var acceptedLag []lagEntry
	var rows []graph.NodeID
	var labels []graph.Label
	for _, req := range batch {
		// Resolve any staged label names under the writer lock — the only
		// place interner growth is serialized. Novel labels commit into
		// the interner only if this delta is accepted below; a rejected
		// delta rolls back to its staged form and leaks nothing.
		commitLabels, rollbackLabels, err := req.d.ResolveLabels(st.shadow.g.Interner())
		if err != nil {
			st.rejErr.Add(1)
			req.err = err
			continue
		}
		// Labels of nodes this delta inserts or deletes, for the change
		// ring: type-1 index entries shift on exactly these. Deleted
		// labels must be read before the apply tears the nodes down; the
		// shadow already holds every earlier delta of the batch.
		var reqLabels []graph.Label
		for _, sp := range req.d.AddNodes {
			reqLabels = append(reqLabels, sp.Label)
		}
		for _, v := range req.d.DelNodes {
			if st.shadow.g.Contains(v) {
				reqLabels = append(reqLabels, st.shadow.g.LabelOf(v))
			}
		}
		res, err := st.shadow.idx.ApplyDeltaTx(st.shadow.g, req.d)
		if err != nil {
			rollbackLabels()
			var verr *access.ViolationError
			if errors.As(err, &verr) {
				st.rejViol.Add(1)
			} else {
				st.rejErr.Add(1)
			}
			req.err = err
			continue
		}
		commitLabels()
		req.res = Result{Epoch: epoch, NewIDs: res.NewIDs, TouchedRows: len(res.Touched)}
		rows = append(rows, res.Touched...) // Touched includes the new IDs
		labels = append(labels, reqLabels...)
		accepted = append(accepted, req)
		// Keep a private copy for the lag replay and the log: the caller
		// is free to reuse or mutate d after Apply returns, and both must
		// reproduce the exact delta the published instance absorbed.
		acceptedLag = append(acceptedLag, lagEntry{d: req.d.Clone(), rows: st.lagRows(res.Touched)})
	}
	if len(accepted) == 0 {
		// Nothing survived: no epoch, no log records, published state
		// untouched. The shadow is still clean (every reject reverted).
		finish()
		return
	}

	if st.dur != nil {
		// Durability point: append every accepted delta, then fsync once
		// for the whole batch. Only after the log has them may the epoch
		// become visible — crash recovery replays exactly these records.
		wlog = st.dur.Log()
		pre = wlog.Stats()
		for i, req := range accepted {
			if st.hookAppend != nil {
				if err := st.hookAppend(i); err != nil {
					settled = true
					st.wedge(batch, err, wlog, pre)
					return
				}
			}
			off, err := wlog.Append(epoch, acceptedLag[i].d)
			if err != nil {
				settled = true
				st.wedge(batch, err, wlog, pre)
				return
			}
			req.res.LogOffset = off
		}
		if st.fsync {
			if err := wlog.Sync(); err != nil {
				settled = true
				st.wedge(batch, err, wlog, pre)
				return
			}
		}
	}

	if st.clog != nil {
		// Record the FULL row set (pre-ownership-filter: non-owned stub
		// rows still carry adjacency a footprint may have read), before
		// the epoch becomes visible — so ChangedSince always covers
		// through at least the published epoch and a revalidation racing
		// this publication can never promote across an unrecorded span.
		st.clog.Record(epoch, nil, rows, labels)
	}
	nrows := len(rows)
	if st.ownRow != nil {
		kept := rows[:0]
		for _, v := range rows {
			if st.ownRow(v) {
				kept = append(kept, v)
			}
		}
		rows = kept
	}
	next := &Snapshot{
		G:     st.shadow.g,
		Fz:    cur.Fz.Refresh(st.shadow.g, rows),
		Idx:   st.shadow.idx,
		Epoch: epoch,
		st:    st.shadow,
	}
	st.cur.Store(next)
	st.signalPublish()
	if wlog != nil {
		// The epoch is visible: its records are immutable history now.
		// Advance the log's published offset so a replication stream may
		// serve them (appends are quiesced under st.mu, so Stats().Offset
		// is exactly the end of this batch's records).
		wlog.PublishTo(wlog.Stats().Offset)
	}
	wlog = nil // published: the batch's records are committed, never rewound
	cur.retired.Store(true)
	st.prev = cur
	st.shadow = cur.st
	st.lag = acceptedLag

	st.applied.Add(uint64(len(accepted)))
	st.batches.Add(1)
	st.touched.Add(uint64(nrows))
	st.lastApplyNS.Store(time.Since(started).Nanoseconds())
	finish()
}

// wedge handles a WAL append/sync failure: the batch errors with
// ErrWedged, the epoch is never published (the mutated shadow instance
// stays invisible and is abandoned), and the store refuses further
// writes — readers keep the last durable epoch. Records the batch
// already appended are rewound out of the log, so a later recovery
// cannot replay updates whose callers were told they did not commit.
// Called with st.mu held; closes every done channel.
func (st *Store) wedge(batch []*commitReq, cause error, l *wal.Log, pre wal.LogStats) {
	st.closed = true
	st.wedged = true
	rewindNote := ""
	if err := l.Rewind(pre); err != nil {
		// The orphan records stay; tell the callers a restart may
		// resurrect the batch they were just told failed.
		rewindNote = fmt.Sprintf(" (log rewind also failed: %v; recovery may replay this batch)", err)
	}
	for _, r := range batch {
		if r.err == nil {
			r.err = fmt.Errorf("%w; update not committed: %v%s", ErrWedged, cause, rewindNote)
			r.res = Result{} // drop any LogOffset from a partial append
		}
		close(r.done)
	}
}

// waitDrained blocks until no reader pins s. s is already retired, so no
// new pins can land (Acquire backs out of retired snapshots).
func (st *Store) waitDrained(s *Snapshot) {
	if s == nil {
		return
	}
	for backoff := time.Microsecond; s.refs.Load() > 0; {
		time.Sleep(backoff)
		if backoff < time.Millisecond {
			backoff *= 2
		}
	}
}

// ChangedSince reports the union of changes in epochs (e, S], where S ≥
// the currently published epoch, as a ChangeSummary valid for promoting
// cached results from epoch e to S. ok is false when the span cannot be
// vouched for: the ring was outrun (e too old), a bulk epoch overflowed
// its slot, the ring is disabled, or e is ahead of everything recorded.
// With no updates recorded yet, only the empty span (e == current epoch)
// is vouched for.
func (st *Store) ChangedSince(e uint64) (ChangeSummary, bool) {
	cur := st.Epoch()
	if st.clog == nil {
		if e == cur {
			return ChangeSummary{Epoch: cur}, true
		}
		return ChangeSummary{}, false
	}
	return st.clog.Since(e, cur)
}

// errWedgedCheckpoint bars checkpoints on a store wedged by a WAL
// failure, whose published state may be ahead of what the log can prove.
var errWedgedCheckpoint = errors.New("store: wedged by an earlier WAL failure; refusing to checkpoint")

// Checkpoint rewrites the WAL snapshot at the currently published epoch
// and rotates the log, bounding recovery replay. The O(|G|) snapshot is
// serialized from a pinned immutable epoch with the writer lock free —
// commits proceed concurrently; the lock is taken only for the log
// rotation and MANIFEST swap, and only if the published epoch still
// matches the prepared snapshot (otherwise the snapshot is discarded and
// prepared again; after a few laps of being outrun by sustained writes
// it serializes under the lock for guaranteed progress). Allowed after
// Close — the shutdown path drains, closes, then checkpoints so a clean
// restart replays nothing.
func (st *Store) Checkpoint() error {
	if st.dur == nil {
		return ErrNotDurable
	}
	st.ckptMu.Lock()
	defer st.ckptMu.Unlock()
	for attempt := 0; attempt < 3; attempt++ {
		st.mu.Lock()
		wedged := st.wedged
		st.mu.Unlock()
		if wedged {
			return errWedgedCheckpoint
		}
		snap := st.Acquire()
		epoch := snap.Epoch
		if epoch == st.dur.LastCheckpointEpoch() {
			// Nothing committed since the last checkpoint: the files on
			// disk are already exactly this state.
			snap.Release()
			return nil
		}
		// Encode under the pin at memory speed, then release before the
		// slow file writes: a held pin would stall the writer (it waits
		// out the pinned epoch's readers two commits later) nearly as
		// badly as a held lock.
		gJSON, iJSON, err := encodeSnapshot(snap)
		snap.Release()
		if err != nil {
			return err
		}
		pend, err := st.dur.PrepareCheckpoint(epoch, gJSON, iJSON)
		if err != nil {
			return err
		}
		st.mu.Lock()
		if st.wedged {
			st.mu.Unlock()
			pend.Discard()
			return errWedgedCheckpoint
		}
		if st.cur.Load().Epoch == epoch {
			err := st.commitCheckpointLocked(pend)
			st.mu.Unlock()
			return err
		}
		st.mu.Unlock()
		// The published epoch moved on while we prepared: the snapshot
		// files name a stale epoch and committing them would rewind the
		// manifest's view of the log base. Drop them and re-prepare.
		pend.Discard()
	}
	// Sustained writes outran every prepare: serialize this one under the
	// writer lock, the pre-refactor behavior, for guaranteed progress.
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.wedged {
		return errWedgedCheckpoint
	}
	snap := st.cur.Load()
	gJSON, iJSON, err := encodeSnapshot(snap)
	if err != nil {
		return err
	}
	if snap.Epoch == st.dur.LastCheckpointEpoch() {
		return nil
	}
	pend, err := st.dur.PrepareCheckpoint(snap.Epoch, gJSON, iJSON)
	if err != nil {
		return err
	}
	return st.commitCheckpointLocked(pend)
}

// encodeSnapshot serializes a pinned epoch's graph and index set to their
// checkpoint JSON forms.
func encodeSnapshot(snap *Snapshot) ([]byte, []byte, error) {
	var gbuf, ibuf bytes.Buffer
	if err := snap.G.WriteSnapshotJSON(&gbuf); err != nil {
		return nil, nil, fmt.Errorf("store: encode checkpoint graph: %w", err)
	}
	if err := snap.Idx.WriteJSON(&ibuf, snap.G.Interner()); err != nil {
		return nil, nil, fmt.Errorf("store: encode checkpoint index: %w", err)
	}
	return gbuf.Bytes(), ibuf.Bytes(), nil
}

// commitCheckpointLocked finishes a prepared checkpoint under st.mu
// (appends quiesced): log rotation + MANIFEST swap.
func (st *Store) commitCheckpointLocked(pend *wal.PendingCheckpoint) error {
	if err := pend.Commit(); err != nil {
		if errors.Is(err, wal.ErrCheckpointAmbiguous) {
			// The manifest swap may or may not survive a crash, so no log
			// can safely acknowledge further appends: wedge. Readers keep
			// the published state; a restart resolves into whichever
			// manifest the disk actually holds.
			st.closed = true
			st.wedged = true
		}
		return err
	}
	st.lastCheckpoint.Store(pend.Epoch())
	return nil
}

// Close bars further updates. Readers are unaffected: already-acquired
// snapshots stay valid and Acquire keeps serving the final epoch. The
// attached WAL directory (if any) remains open — close it after a final
// Checkpoint via wal.Dir.Close.
func (st *Store) Close() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
}

// Wedge poisons the store without an open transaction: writes are
// permanently refused while readers keep the published epoch — the same
// terminal state a WAL failure leaves. The shard router uses it to keep
// every shard of a failed cross-shard batch in lockstep, including the
// shards the batch never opened a transaction on (partially wedging the
// fleet would let their epochs drift from the global sequence).
func (st *Store) Wedge() {
	st.mu.Lock()
	st.closed = true
	st.wedged = true
	st.mu.Unlock()
}

// Stats returns a snapshot of the store's cumulative counters.
func (st *Store) Stats() Stats {
	s := Stats{
		Epoch:             st.Epoch(),
		Applied:           st.applied.Load(),
		Batches:           st.batches.Load(),
		RejectedViolation: st.rejViol.Load(),
		RejectedError:     st.rejErr.Load(),
		TouchedRows:       st.touched.Load(),
		LastApplyNS:       st.lastApplyNS.Load(),
	}
	st.qmu.Lock()
	s.QueueDepth = len(st.queue)
	st.qmu.Unlock()
	if st.dur != nil {
		ls := st.dur.Log().Stats()
		s.Durable = true
		s.WALOffset = ls.Offset
		s.WALRecords = ls.Records
		s.WALSyncs = ls.Syncs
		s.LastCheckpointEpoch = st.lastCheckpoint.Load()
	}
	return s
}
