package store

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"boundedg/internal/graph"
	"boundedg/internal/wal"
)

// wedgeFixture builds a durable store plus a deterministic 3-delta batch
// stalled behind the writer lock, with hookAppend installed. The caller
// releases the lock to run the batch and gets the per-caller outcomes.
func wedgeFixture(t *testing.T, hook func(i int) error) (*Store, string, func() ([]Result, []error)) {
	t.Helper()
	g, idx, in := benchState(t)
	dir := t.TempDir()
	wd, err := wal.OpenDir(dir, in)
	if err != nil {
		t.Fatal(err)
	}
	if err := wd.Init(0, g, idx); err != nil {
		t.Fatal(err)
	}
	st := New(g, idx, WithWAL(wd, true))
	label := in.Intern("item")
	// One serial apply: the shadow clone is paid and the log holds one
	// record the failed batch must not disturb.
	if _, err := st.Apply(&graph.Delta{AddNodes: []graph.NodeSpec{{Label: label}}}); err != nil {
		t.Fatal(err)
	}
	st.hookAppend = hook

	const writers = 3
	st.mu.Lock() // stall the leader path; the Applies pile up in the queue
	results := make([]Result, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = errors.New("leader-panic: " + r.(string))
				}
			}()
			results[i], errs[i] = st.Apply(&graph.Delta{AddNodes: []graph.NodeSpec{{Label: label}}})
		}(i)
	}
	for {
		st.qmu.Lock()
		n := len(st.queue)
		st.qmu.Unlock()
		if n == writers {
			break
		}
		time.Sleep(time.Millisecond)
	}
	return st, dir, func() ([]Result, []error) {
		st.mu.Unlock()
		wg.Wait()
		return results, errs
	}
}

// TestWedgeRewindsLog: a WAL append failing mid-batch must error every
// caller with ErrWedged (matching ErrClosed, the server's 503), leave no
// record of the failed batch in the log, and bar further writes — so a
// restart recovers exactly the pre-batch state instead of silently
// committing updates whose callers were told they failed.
func TestWedgeRewindsLog(t *testing.T) {
	bang := errors.New("injected append failure")
	st, dir, run := wedgeFixture(t, func(i int) error {
		if i == 1 { // first append lands, second fails: one orphan record
			return bang
		}
		return nil
	})
	results, errs := run()
	for i, err := range errs {
		if !errors.Is(err, ErrWedged) || !errors.Is(err, ErrClosed) {
			t.Fatalf("caller %d: err %v, want ErrWedged (wrapping ErrClosed)", i, err)
		}
		if results[i].LogOffset != 0 {
			t.Fatalf("caller %d reports log offset %d for an uncommitted update", i, results[i].LogOffset)
		}
	}
	if _, err := st.Apply(&graph.Delta{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-wedge Apply: %v, want ErrClosed", err)
	}
	if st.Epoch() != 1 {
		t.Fatalf("published epoch %d after wedge, want 1 (batch must not publish)", st.Epoch())
	}
	st.dur.Close()

	// Recovery must see the serial record only: the orphan append of the
	// failed batch was rewound out of the log.
	_, _, _, d, info := recoverDir(t, dir)
	defer d.Close()
	if info.Records != 1 || info.Epoch != 1 {
		t.Fatalf("recovered %d records to epoch %d, want 1 record / epoch 1", info.Records, info.Epoch)
	}
	if info.Truncated != 0 {
		t.Fatalf("rewound log reported a torn tail: %d bytes (%s)", info.Truncated, info.TruncateReason)
	}
}

// TestCommitPanicFailsWaiters: a panic inside a group commit must not
// strand the batch's waiters or deadlock the store — the leader's panic
// propagates (its Apply caller sees it), every other waiter gets an
// error, the appended records are rewound, and the writer lock is
// released so later writes fail fast with ErrClosed.
func TestCommitPanicFailsWaiters(t *testing.T) {
	st, dir, run := wedgeFixture(t, func(i int) error {
		if i == 1 {
			panic("injected commit panic")
		}
		return nil
	})
	_, errs := run()
	var panicked, failed int
	for i, err := range errs {
		switch {
		case err == nil:
			t.Fatalf("caller %d got no error from a panicked commit", i)
		case strings.HasPrefix(err.Error(), "leader-panic: "):
			panicked++
		default:
			failed++
		}
	}
	if panicked != 1 || failed != 2 {
		t.Fatalf("outcomes: %d panicked, %d errored; want exactly the leader to panic and 2 waiters to error (%v)", panicked, failed, errs)
	}

	// The writer lock must be free and the store closed: a fresh Apply
	// fails fast instead of deadlocking.
	done := make(chan error, 1)
	go func() {
		_, err := st.Apply(&graph.Delta{})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("post-panic Apply: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-panic Apply deadlocked: writer lock never released")
	}
	st.dur.Close()

	_, _, _, d, info := recoverDir(t, dir)
	defer d.Close()
	if info.Records != 1 || info.Epoch != 1 {
		t.Fatalf("recovered %d records to epoch %d, want 1/1 (panicked batch rewound)", info.Records, info.Epoch)
	}
}
