package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/workload"
)

// indexBytes canonicalizes an index set through WriteJSON (sorted entries
// and members), so byte equality is semantic equality.
func indexBytes(t testing.TB, set *access.IndexSet, in *graph.Interner) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func graphBytes(t testing.TB, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkFrozen asserts fz matches g's exact adjacency.
func checkFrozen(t testing.TB, fz *graph.Frozen, g *graph.Graph) {
	t.Helper()
	if fz.Cap() != g.Cap() || fz.NumEdges() != g.NumEdges() {
		t.Fatalf("frozen shape (cap %d, |E| %d) vs graph (cap %d, |E| %d)",
			fz.Cap(), fz.NumEdges(), g.Cap(), g.NumEdges())
	}
	for v := graph.NodeID(0); int(v) < g.Cap(); v++ {
		want := append([]graph.NodeID(nil), g.Out(v)...)
		for i := 1; i < len(want); i++ {
			for j := i; j > 0 && want[j] < want[j-1]; j-- {
				want[j], want[j-1] = want[j-1], want[j]
			}
		}
		if got := fz.Out(v); !reflect.DeepEqual(append([]graph.NodeID(nil), got...), want) {
			t.Fatalf("Out(%d) = %v, want %v", v, got, want)
		}
	}
}

// randomDelta draws one update batch against g's current state: a node
// insert wired to random neighbors, a fresh edge, an edge deletion, or a
// node deletion. Inserts can violate the workload's tight caps — that is
// deliberate, the rejection path is part of the property.
func randomDelta(r *rand.Rand, g *graph.Graph) *graph.Delta {
	live := g.NodeList()
	labels := g.Labels()
	d := &graph.Delta{}
	switch r.Intn(4) {
	case 0:
		d.AddNodes = []graph.NodeSpec{{Label: labels[r.Intn(len(labels))]}}
		for k := 0; k < 1+r.Intn(3); k++ {
			other := live[r.Intn(len(live))]
			if r.Intn(2) == 0 {
				d.AddEdges = append(d.AddEdges, [2]graph.NodeID{graph.NewNodeRef(0), other})
			} else {
				d.AddEdges = append(d.AddEdges, [2]graph.NodeID{other, graph.NewNodeRef(0)})
			}
		}
	case 1:
		d.AddEdges = [][2]graph.NodeID{{live[r.Intn(len(live))], live[r.Intn(len(live))]}}
	case 2:
		for tries := 0; tries < 10; tries++ {
			v := live[r.Intn(len(live))]
			if outs := g.Out(v); len(outs) > 0 {
				d.DelEdges = [][2]graph.NodeID{{v, outs[r.Intn(len(outs))]}}
				break
			}
		}
	case 3:
		d.DelNodes = []graph.NodeID{live[r.Intn(len(live))]}
	}
	return d
}

// boundedPlans plans the dataset's generated query load under both
// semantics, keeping the effectively bounded ones.
func boundedPlans(t testing.TB, d *workload.Dataset, n int) (sub, sim []*core.Plan) {
	t.Helper()
	for _, q := range workload.DefaultQueryGen.Generate(d, n, 5) {
		if p, err := core.NewPlan(q, d.Schema, core.Subgraph); err == nil {
			sub = append(sub, p)
		}
		if p, err := core.NewPlan(q, d.Schema, core.Simulation); err == nil {
			sim = append(sim, p)
		}
	}
	return sub, sim
}

// checkQueriesDifferential evaluates every plan two ways — through the
// snapshot (incremental indexes + refreshed Frozen) and from scratch
// (rebuilt indexes + fresh Freeze of the same graph) — and requires
// identical answers.
func checkQueriesDifferential(t testing.TB, snap *Snapshot, schema *access.Schema, sub, sim []*core.Plan) {
	t.Helper()
	fresh := access.BuildUnchecked(snap.G, schema)
	fz := snap.G.Freeze()
	mopt := match.SubgraphOptions{StoreMatches: true, MaxMatches: 1 << 20}
	for i, p := range sub {
		got, _, err := p.EvalSubgraphWith(snap.G, snap.Idx, mopt, &core.ExecConfig{Frozen: snap.Fz})
		if err != nil {
			t.Fatalf("sub query %d via snapshot: %v", i, err)
		}
		want, _, err := p.EvalSubgraphWith(snap.G, fresh, mopt, &core.ExecConfig{Frozen: fz})
		if err != nil {
			t.Fatalf("sub query %d from scratch: %v", i, err)
		}
		match.SortMatches(got.Matches)
		match.SortMatches(want.Matches)
		if got.Count != want.Count || !reflect.DeepEqual(got.Matches, want.Matches) {
			t.Fatalf("sub query %d: snapshot answer diverged from rebuild (%d vs %d matches)", i, got.Count, want.Count)
		}
	}
	for i, p := range sim {
		got, _, err := p.EvalSimWith(snap.G, snap.Idx, &core.ExecConfig{Frozen: snap.Fz})
		if err != nil {
			t.Fatalf("sim query %d via snapshot: %v", i, err)
		}
		want, _, err := p.EvalSimWith(snap.G, fresh, &core.ExecConfig{Frozen: fz})
		if err != nil {
			t.Fatalf("sim query %d from scratch: %v", i, err)
		}
		if !sameSim(got.Sim, want.Sim) {
			t.Fatalf("sim query %d: snapshot relation diverged from rebuild", i)
		}
	}
}

func sameSim(a, b [][]graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for u := range a {
		as := append([]graph.NodeID(nil), a[u]...)
		bs := append([]graph.NodeID(nil), b[u]...)
		for i := 1; i < len(as); i++ {
			for j := i; j > 0 && as[j] < as[j-1]; j-- {
				as[j], as[j-1] = as[j-1], as[j]
			}
		}
		for i := 1; i < len(bs); i++ {
			for j := i; j > 0 && bs[j] < bs[j-1]; j-- {
				bs[j], bs[j-1] = bs[j-1], bs[j]
			}
		}
		if !reflect.DeepEqual(as, bs) {
			return false
		}
	}
	return true
}

// TestStoreDifferentialWorkloads is the update-stream property test over
// all three workload generators: after every random delta — accepted or
// rejected — the incrementally maintained indexes must be byte-identical
// to an access.Build from scratch, the refreshed Frozen must mirror the
// graph, rejected deltas must leave the published bytes untouched, and
// bounded query answers through the snapshot must equal from-scratch
// evaluation.
func TestStoreDifferentialWorkloads(t *testing.T) {
	gens := map[string]*workload.Dataset{
		"dbpedia": workload.DBpedia(0.08, 2),
		"imdb":    workload.IMDb(0.08, 2),
		"webbase": workload.WebBase(0.08, 2),
	}
	for name, d := range gens {
		t.Run(name, func(t *testing.T) {
			idx, viols := access.Build(d.G, d.Schema)
			if viols != nil {
				t.Fatal(viols[0])
			}
			sub, sim := boundedPlans(t, d, 12)
			if len(sub) == 0 && len(sim) == 0 {
				t.Fatal("no bounded queries")
			}
			st := New(d.G, idx)
			r := rand.New(rand.NewSource(31))
			accepted, rejected := 0, 0
			for step := 0; step < 30; step++ {
				snap := st.Acquire()
				gB := graphBytes(t, snap.G)
				xB := indexBytes(t, snap.Idx, d.In)
				delta := randomDelta(r, snap.G)
				snap.Release()

				_, err := st.Apply(delta)
				var verr *access.ViolationError
				switch {
				case err == nil:
					accepted++
				case errors.As(err, &verr):
					rejected++
				default:
					t.Fatalf("step %d: structural error from a state-derived delta: %v", step, err)
				}

				snap = st.Acquire()
				if err != nil {
					// Rejected: published state must be bit-identical.
					if !bytes.Equal(graphBytes(t, snap.G), gB) {
						t.Fatalf("step %d: graph changed by rejected delta", step)
					}
					if !bytes.Equal(indexBytes(t, snap.Idx, d.In), xB) {
						t.Fatalf("step %d: indexes changed by rejected delta", step)
					}
				}
				if got, want := indexBytes(t, snap.Idx, d.In), indexBytes(t, access.BuildUnchecked(snap.G, d.Schema), d.In); !bytes.Equal(got, want) {
					t.Fatalf("step %d: maintained indexes diverge from rebuild", step)
				}
				checkFrozen(t, snap.Fz, snap.G)
				checkQueriesDifferential(t, snap, d.Schema, sub, sim)
				snap.Release()
			}
			if accepted == 0 {
				t.Fatal("no delta was accepted — the stream exercised nothing")
			}
			t.Logf("%s: %d accepted, %d rejected, epoch %d", name, accepted, rejected, st.Epoch())
		})
	}
}

// TestStoreThousandUpdateBatches drives the acceptance scenario: a stream
// of 1000 update batches with differential checks before, during and
// after.
func TestStoreThousandUpdateBatches(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-batch stream")
	}
	d := workload.IMDb(0.05, 3)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatal(viols[0])
	}
	sub, sim := boundedPlans(t, d, 8)
	st := New(d.G, idx)
	check := func(step int) {
		snap := st.Acquire()
		defer snap.Release()
		if got, want := indexBytes(t, snap.Idx, d.In), indexBytes(t, access.BuildUnchecked(snap.G, d.Schema), d.In); !bytes.Equal(got, want) {
			t.Fatalf("step %d: maintained indexes diverge from rebuild", step)
		}
		checkFrozen(t, snap.Fz, snap.G)
		checkQueriesDifferential(t, snap, d.Schema, sub, sim)
	}
	check(0)
	r := rand.New(rand.NewSource(17))
	accepted := 0
	for step := 1; step <= 1000; step++ {
		snap := st.Acquire()
		delta := randomDelta(r, snap.G)
		snap.Release()
		_, err := st.Apply(delta)
		var verr *access.ViolationError
		if err == nil {
			accepted++
		} else if !errors.As(err, &verr) {
			t.Fatalf("step %d: %v", step, err)
		}
		if step%200 == 0 {
			check(step)
		}
	}
	check(1001)
	if st.Stats().Applied != uint64(accepted) {
		t.Fatalf("stats.Applied = %d, want %d", st.Stats().Applied, accepted)
	}
	t.Logf("epoch %d after 1000 batches (%d accepted), touched rows %d",
		st.Epoch(), accepted, st.Stats().TouchedRows)
}

func TestStoreEpochPinning(t *testing.T) {
	g := graph.New(nil)
	year := g.Interner().Intern("year")
	movie := g.Interner().Intern("movie")
	y := g.AddNode(year, graph.IntValue(2011))
	m := g.AddNode(movie, graph.NoValue())
	g.MustAddEdge(m, y)
	schema := access.NewSchema(
		access.MustNew(nil, year, 10),
		access.MustNew([]graph.Label{year}, movie, 10),
	)
	idx, viols := access.Build(g, schema)
	if viols != nil {
		t.Fatal(viols)
	}
	st := New(g, idx)

	old := st.Acquire()
	if old.Epoch != 0 {
		t.Fatalf("initial epoch = %d", old.Epoch)
	}
	res, err := st.Apply(&graph.Delta{
		AddNodes: []graph.NodeSpec{{Label: movie}},
		AddEdges: [][2]graph.NodeID{{graph.NewNodeRef(0), y}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 {
		t.Fatalf("published epoch = %d, want 1", res.Epoch)
	}
	// The pinned epoch-0 snapshot keeps its pre-update view even though
	// epoch 1 is out.
	if old.G.Contains(res.NewIDs[0]) {
		t.Fatal("old snapshot sees the inserted node")
	}
	if got := len(old.Fz.In(y)); got != 1 {
		t.Fatalf("old frozen In(year) = %d, want 1", got)
	}
	cur := st.Acquire()
	if cur.Epoch != 1 || !cur.G.Contains(res.NewIDs[0]) || len(cur.Fz.In(y)) != 2 {
		t.Fatalf("new snapshot wrong: epoch %d, in-degree %d", cur.Epoch, len(cur.Fz.In(y)))
	}
	cur.Release()
	old.Release()

	// With the old epoch drained, the writer can recycle its instance.
	if _, err := st.Apply(&graph.Delta{DelNodes: []graph.NodeID{res.NewIDs[0]}}); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", st.Epoch())
	}
}

func TestStoreRejectionConsumesNoEpoch(t *testing.T) {
	g := graph.New(nil)
	year := g.Interner().Intern("year")
	movie := g.Interner().Intern("movie")
	y := g.AddNode(year, graph.IntValue(2011))
	m := g.AddNode(movie, graph.NoValue())
	g.MustAddEdge(m, y)
	schema := access.NewSchema(access.MustNew([]graph.Label{year}, movie, 1))
	idx, viols := access.Build(g, schema)
	if viols != nil {
		t.Fatal(viols)
	}
	st := New(g, idx)
	_, err := st.Apply(&graph.Delta{
		AddNodes: []graph.NodeSpec{{Label: movie}},
		AddEdges: [][2]graph.NodeID{{graph.NewNodeRef(0), y}},
	})
	var verr *access.ViolationError
	if !errors.As(err, &verr) {
		t.Fatalf("err = %v, want ViolationError", err)
	}
	if st.Epoch() != 0 {
		t.Fatalf("rejection consumed an epoch: %d", st.Epoch())
	}
	if _, err := st.Apply(&graph.Delta{DelNodes: []graph.NodeID{graph.NodeID(4242)}}); err == nil {
		t.Fatal("structural error not surfaced")
	}
	s := st.Stats()
	if s.RejectedViolation != 1 || s.RejectedError != 1 || s.Applied != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// A valid update still lands.
	if _, err := st.Apply(&graph.Delta{DelEdges: [][2]graph.NodeID{{m, y}}}); err != nil {
		t.Fatal(err)
	}
	if st.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", st.Epoch())
	}
}

func TestStoreClose(t *testing.T) {
	g := graph.New(nil)
	l := g.Interner().Intern("a")
	g.AddNode(l, graph.NoValue())
	idx, _ := access.Build(g, access.NewSchema(access.MustNew(nil, l, 5)))
	st := New(g, idx)
	st.Close()
	if _, err := st.Apply(&graph.Delta{AddNodes: []graph.NodeSpec{{Label: l}}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	snap := st.Acquire() // reads survive Close
	defer snap.Release()
	if snap.Epoch != 0 {
		t.Fatalf("epoch = %d", snap.Epoch)
	}
}

// BenchmarkUpdateApply measures the epoch-publish cost of one small
// update batch (an edge toggle) at two dataset scales. Bounded-update
// maintenance touches only ΔG ∪ NbG(ΔG), so rows/op and ns/op must stay
// flat as |G| quadruples.
func BenchmarkUpdateApply(b *testing.B) {
	for _, scale := range []float64{0.25, 1.0} {
		b.Run(fmt.Sprintf("imdb-%.2gx", scale), func(b *testing.B) {
			d := workload.IMDb(scale, 1)
			idx, viols := access.Build(d.G, d.Schema)
			if viols != nil {
				b.Fatal(viols[0])
			}
			// Toggle one existing edge between two bounded-degree nodes
			// (a typical point update; edges incident to the fixed anchor
			// nodes have |G|-proportional neighborhoods by construction,
			// which would measure the workload's shape, not the store).
			// Deleting and restoring an edge can never violate a bound
			// that held before.
			var from, to graph.NodeID
			found := false
			d.G.Edges(func(f, t graph.NodeID) bool {
				if d.G.Degree(f)+d.G.Degree(t) <= 12 {
					from, to = f, t
					found = true
					return false
				}
				return true
			})
			if !found {
				b.Fatal("no bounded-degree edge")
			}
			st := New(d.G, idx)
			del := &graph.Delta{DelEdges: [][2]graph.NodeID{{from, to}}}
			add := &graph.Delta{AddEdges: [][2]graph.NodeID{{from, to}}}
			// Warm up: pay the one-off second-instance clone outside the
			// measurement.
			if _, err := st.Apply(del); err != nil {
				b.Fatal(err)
			}
			if _, err := st.Apply(add); err != nil {
				b.Fatal(err)
			}
			base := st.Stats().TouchedRows
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dd := add
				if i%2 == 0 {
					dd = del
				}
				if _, err := st.Apply(dd); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			s := st.Stats()
			b.ReportMetric(float64(s.TouchedRows-base)/float64(b.N), "rows/op")
			b.ReportMetric(float64(d.G.Size()), "graphsize")
		})
	}
}

// BenchmarkUpdateNodeChurn inserts and deletes a node wired next to the
// workload's anchor hubs — the deletion path where index maintenance must
// purge the dead node's entries directly instead of re-deriving every
// hub neighbor's |G|-proportional row.
func BenchmarkUpdateNodeChurn(b *testing.B) {
	for _, scale := range []float64{0.25, 1.0} {
		b.Run(fmt.Sprintf("imdb-%.2gx", scale), func(b *testing.B) {
			d := workload.IMDb(scale, 1)
			idx, viols := access.Build(d.G, d.Schema)
			if viols != nil {
				b.Fatal(viols[0])
			}
			// Wire each inserted movie to an existing movie's year: the
			// (year, award)->movie bound is not affected (no award edge),
			// so the churn is always accepted.
			var year graph.NodeID = graph.InvalidNode
			movieL, _ := d.In.Lookup("movie")
			yearL, _ := d.In.Lookup("year")
			for _, m := range d.G.NodesByLabel(movieL) {
				for _, w := range d.G.Out(m) {
					if d.G.LabelOf(w) == yearL {
						year = w
						break
					}
				}
				if year != graph.InvalidNode {
					break
				}
			}
			if year == graph.InvalidNode {
				b.Fatal("no movie->year edge")
			}
			st := New(d.G, idx)
			ins := &graph.Delta{
				AddNodes: []graph.NodeSpec{{Label: movieL}},
				AddEdges: [][2]graph.NodeID{{graph.NewNodeRef(0), year}},
			}
			res, err := st.Apply(ins) // warm up the second instance
			if err != nil {
				b.Fatal(err)
			}
			last := res.NewIDs[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if i%2 == 0 {
					_, err = st.Apply(&graph.Delta{DelNodes: []graph.NodeID{last}})
				} else {
					res, err = st.Apply(ins)
					if err == nil {
						last = res.NewIDs[0]
					}
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(d.G.Degree(year)), "hubdeg")
		})
	}
}
