package store

import (
	"sync"

	"boundedg/internal/graph"
)

// ChangeSummary is the union of everything that changed across a span of
// epochs: the rows whose adjacency was modified (including inserted and
// deleted nodes — exactly the per-epoch ChangedRows ∪ new-ID sets), and
// the labels of nodes inserted or deleted anywhere in the span (type-1
// index entries shift on those even when no pre-existing row changed).
// A cached query result whose core.Footprint is disjoint from both sets
// is bit-identical to a fresh execution at Epoch.
type ChangeSummary struct {
	// Epoch is the newest epoch the summary covers — the version a
	// disjoint cached result may be promoted to. It is always at least
	// the store's published epoch at the time of the call.
	Epoch uint64
	// Vector is the per-shard epoch vector published at Epoch (sharded
	// routers only; nil on an unsharded store).
	Vector []uint64
	// Rows is the union of changed rows over the span. It may contain
	// duplicates; callers only membership-test against it.
	Rows []graph.NodeID
	// Labels holds the labels of nodes inserted or deleted in the span,
	// with duplicates possible.
	Labels []graph.Label
}

// Bounds on the recent-deltas ring. Slots bound how many epochs back a
// cached result can still be revalidated; the per-slot row cap bounds the
// ring's memory at slots×rows and turns a bulk epoch into an overflow
// slot — spans crossing one report outrun, again degrading to
// recomputation rather than an unsound promotion.
const (
	defaultChangeLogSlots = 256
	changeLogRowCap       = 4096
)

// changeSlot is one published epoch's change record.
type changeSlot struct {
	epoch    uint64
	vector   []uint64
	rows     []graph.NodeID
	labels   []graph.Label
	overflow bool // rows exceeded the cap and were dropped
}

// ChangeLog is a bounded ring of per-epoch change records, shared by the
// unsharded store (keyed by epoch) and the sharded router (keyed by GSN,
// slots carrying the published vector). Writers record under the
// publisher's own serialization, BEFORE the new version becomes visible,
// so the ring always covers through at least the published version —
// readers can never observe a version the ring has a gap below.
type ChangeLog struct {
	mu    sync.Mutex
	slots []changeSlot
	next  int // slot index the next record lands in
	n     int // recorded slots (≤ len(slots))
}

// NewChangeLog returns an empty ring of the given slot count; slots <= 0
// picks the default.
func NewChangeLog(slots int) *ChangeLog {
	if slots <= 0 {
		slots = defaultChangeLogSlots
	}
	return &ChangeLog{slots: make([]changeSlot, slots)}
}

// Record appends one epoch's changes. Epochs must arrive contiguously
// ascending (the publishers' +1-per-batch numbering guarantees it).
// The rows and labels are copied; vector is retained as passed (callers
// hand over an immutable slice).
func (cl *ChangeLog) Record(epoch uint64, vector []uint64, rows []graph.NodeID, labels []graph.Label) {
	s := changeSlot{epoch: epoch, vector: vector}
	if len(rows) > changeLogRowCap {
		s.overflow = true
	} else {
		// Fresh allocations, never reused: summaries returned to readers
		// may share these slices after the slot itself is overwritten.
		s.rows = append([]graph.NodeID(nil), rows...)
		s.labels = append([]graph.Label(nil), labels...)
	}
	cl.mu.Lock()
	cl.slots[cl.next] = s
	cl.next = (cl.next + 1) % len(cl.slots)
	if cl.n < len(cl.slots) {
		cl.n++
	}
	cl.mu.Unlock()
}

// Reset empties the ring. A follower re-bootstrapping from a primary
// checkpoint jumps its epoch discontiguously; the ring requires
// contiguous ascending epochs, so the pre-jump records must go —
// revalidation across the jump degrades to recomputation, which is the
// sound direction.
func (cl *ChangeLog) Reset() {
	cl.mu.Lock()
	for i := range cl.slots {
		cl.slots[i] = changeSlot{}
	}
	cl.next, cl.n = 0, 0
	cl.mu.Unlock()
}

// Since returns the union of changes in epochs (e, newest], where newest
// is the latest recorded epoch. cur is the caller's published version;
// ok requires the span to be fully covered: nothing recorded is fine only
// when e == cur (an idle store), and any overflow slot or outrun span
// reports !ok.
func (cl *ChangeLog) Since(e, cur uint64) (ChangeSummary, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.n == 0 {
		if e == cur {
			return ChangeSummary{Epoch: cur}, true
		}
		return ChangeSummary{}, false
	}
	newestIdx := (cl.next - 1 + len(cl.slots)) % len(cl.slots)
	newest := cl.slots[newestIdx].epoch
	if newest < cur || e > newest {
		// A gap above the ring (recording is pre-publication, so this is
		// a caller error) or a future epoch: refuse.
		return ChangeSummary{}, false
	}
	oldest := newest - uint64(cl.n) + 1
	if e+1 < oldest {
		return ChangeSummary{}, false // outrun: the span's tail was evicted
	}
	sum := ChangeSummary{Epoch: newest, Vector: cl.slots[newestIdx].vector}
	if e == newest {
		return sum, true
	}
	if cl.n == 1 || e+1 == newest {
		// Single-slot span: share the slot's (immutable) slices.
		s := &cl.slots[newestIdx]
		if s.overflow {
			return ChangeSummary{}, false
		}
		sum.Rows, sum.Labels = s.rows, s.labels
		return sum, true
	}
	for ep := e + 1; ep <= newest; ep++ {
		s := &cl.slots[(newestIdx-int(newest-ep)+len(cl.slots)*2)%len(cl.slots)]
		if s.overflow {
			return ChangeSummary{}, false
		}
		sum.Rows = append(sum.Rows, s.rows...)
		sum.Labels = append(sum.Labels, s.labels...)
	}
	return sum, true
}
