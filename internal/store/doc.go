// Package store makes graph updates first-class in the serving path: a
// Store owns a graph plus its access-constraint indexes and publishes an
// immutable epoch Snapshot (graph, frozen CSR, indexes, epoch) after every
// accepted batch of graph.Delta updates. Readers pick snapshots up with
// one atomic pointer load and pin them for the duration of a query, so
// in-flight queries keep a consistent view while the writer builds the
// next epoch — the paper's §II incremental maintenance (ΔG, NbG(ΔG))
// turned into a read/write store.
//
// # The double-instance copy-on-write protocol
//
// The store keeps two full (graph, indexes) instances. The published
// snapshot is backed by one; the writer applies the next batch to the
// other — first replaying the deltas it is behind by (the "lag") — then
// refreshes the CSR snapshot incrementally (graph.Frozen.Refresh,
// proportional to |NbG(ΔG)|) and swaps the published pointer. Each
// accepted delta is therefore applied exactly twice, once per instance,
// at O(|ΔG ∪ NbG(ΔG)|) each — independent of |G|. The second instance is
// cloned lazily on the first update, so a read-only store costs nothing
// extra.
//
// The drain invariant makes this safe: before mutating an instance the
// writer waits until no reader still pins the snapshot that last exposed
// it. Acquire pins with a refcount and backs out of snapshots the writer
// has already retired, so the wait is bounded by query latency: the
// instance behind epoch E becomes writable only after every reader of
// E has released — which is why a snapshot must be released promptly,
// and why no query ever observes a half-applied epoch.
//
// # Group commit
//
// Apply is the only write path, and it batches: concurrently submitted
// deltas queue up while one caller — the leader, whichever Apply call
// takes the writer lock first — drains the whole queue and commits it as
// a single epoch. Each delta in the batch keeps its individual
// accept/reject verdict (access.IndexSet.ApplyDeltaTx applies or rejects
// it atomically, in queue order), but the fixed per-epoch overheads —
// waiting out readers, the CSR refresh, the pointer swap, and the WAL
// fsync — are paid once per batch instead of once per delta. Under a
// write burst the epoch rate and the fsync rate both collapse to the
// batch rate (see BenchmarkGroupCommit), which is exactly the update
// batching the per-epoch fixed costs call for at small |ΔG|.
//
// A delta that fails structurally or would break an access constraint is
// rejected atomically: the published state is bit-for-bit unaffected and
// the delta is never logged.
//
// # Durability
//
// With WithWAL the store threads every accepted delta through an
// internal/wal log *before* publishing the epoch that contains it:
// commit order is append (one record per accepted delta, stamped with the
// epoch) → fsync (one per batch, policy permitting) → publish. A crash at
// any point therefore loses nothing that was reported committed, and
// recovery (wal.Dir.Recover + WithBaseEpoch) replays the log tail onto
// the last checkpoint snapshot, reconstructing the exact published state.
// Checkpoint rewrites the snapshot at the current epoch and rotates the
// log so replay stays short. If the log itself fails mid-batch the store
// wedges: the batch errors with ErrWedged, records it already appended
// are rewound out of the log (recovery must not replay updates whose
// callers were told they failed), no epoch is published, and further
// writes are refused — readers keep the last durable state.
package store
