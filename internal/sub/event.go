package sub

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"boundedg/internal/graph"
)

// Event types, in the order a consumer sees them: one "init" opens every
// stream, "diff"/"heartbeat" carry the steady state, and "resync"
// replaces a dropped incremental stream with a fresh full answer.
const (
	// TypeInit is the first event of a stream: the full current answer.
	TypeInit = "init"
	// TypeDiff is an incremental change: rows added to and removed from
	// the previous answer, stamped with the epoch that caused them.
	TypeDiff = "diff"
	// TypeResync is a full answer replacing whatever the consumer held:
	// the incremental stream was dropped (queue overflow, evaluation
	// failure) and diffs restart from this state.
	TypeResync = "resync"
	// TypeHeartbeat claims liveness and certifies that the answer is
	// unchanged through Epoch. Its epoch may lag a concurrently queued
	// diff — a heartbeat never certifies past events not yet delivered.
	TypeHeartbeat = "heartbeat"
)

// Event is one frame of a subscription stream. On the wire it is a
// server-sent event: "event: <type>" followed by one "data:" line
// holding the JSON of the remaining fields.
//
// Every event is a point claim at Epoch: init/resync claim Rows is the
// full answer at Epoch, diff claims the previous answer plus
// Added minus Removed is the answer at Epoch, heartbeat claims the
// answer is unchanged through Epoch. Row lists are sorted
// lexicographically (match.SortMatches order), so folding a stream
// yields byte-identical rows to a fresh full evaluation.
type Event struct {
	Type string `json:"-"`
	// Epoch stamps the claim; on a sharded daemon it is the global
	// sequence number and Vector the per-shard epoch vector.
	Epoch  uint64   `json:"epoch"`
	Vector []uint64 `json:"vector,omitempty"`
	// Rows is the full answer (init and resync only).
	Rows [][]graph.NodeID `json:"rows,omitempty"`
	// Added and Removed are the diff against the previous claim (diff
	// only), each sorted.
	Added   [][]graph.NodeID `json:"added,omitempty"`
	Removed [][]graph.NodeID `json:"removed,omitempty"`
	// Complete reports whether the answer at Epoch exhausted the match
	// space (false when the subscription's limit truncated it).
	// Meaningful on init, diff and resync.
	Complete bool `json:"complete"`
}

// WriteEvent encodes ev as one server-sent-event frame on w.
func WriteEvent(w io.Writer, ev Event) error {
	if ev.Type == "" || strings.ContainsAny(ev.Type, "\r\n:") {
		return fmt.Errorf("sub: bad event type %q", ev.Type)
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	// json.Marshal escapes control characters, so data is one line.
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err
}

// Decoder reads server-sent-event frames from a subscription stream.
type Decoder struct {
	r *bufio.Reader
}

// NewDecoder returns a Decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: bufio.NewReader(r)} }

// Next returns the next event. It returns io.EOF at a clean stream end
// (between frames) and io.ErrUnexpectedEOF when the stream dies
// mid-frame. Comment lines and unknown SSE fields are skipped, per the
// SSE grammar; multiple data lines concatenate with a newline.
func (d *Decoder) Next() (Event, error) {
	var typ string
	var data []string
	started := false
	for {
		line, err := d.r.ReadString('\n')
		if err != nil {
			if err == io.EOF && !started && line == "" {
				return Event{}, io.EOF
			}
			if err == io.EOF {
				return Event{}, io.ErrUnexpectedEOF
			}
			return Event{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			if !started {
				continue
			}
			break
		}
		started = true
		if strings.HasPrefix(line, ":") {
			continue
		}
		field, val, _ := strings.Cut(line, ":")
		val = strings.TrimPrefix(val, " ")
		switch field {
		case "event":
			typ = val
		case "data":
			data = append(data, val)
		}
	}
	if typ == "" {
		return Event{}, fmt.Errorf("sub: frame without an event field")
	}
	var ev Event
	if len(data) > 0 {
		if err := json.Unmarshal([]byte(strings.Join(data, "\n")), &ev); err != nil {
			return Event{}, fmt.Errorf("sub: bad %s payload: %w", typ, err)
		}
	}
	ev.Type = typ
	return ev, nil
}

// rowCompare orders rows lexicographically — the same order
// match.SortMatches establishes (rows of one subscription share a
// length, so the length tiebreak never fires there).
func rowCompare(a, b []graph.NodeID) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return len(a) - len(b)
}

// DiffRows computes new minus old and old minus new over two sorted row
// sets by one merge walk; both outputs come back sorted.
func DiffRows(old, cur [][]graph.NodeID) (added, removed [][]graph.NodeID) {
	i, j := 0, 0
	for i < len(old) && j < len(cur) {
		switch c := rowCompare(old[i], cur[j]); {
		case c < 0:
			removed = append(removed, old[i])
			i++
		case c > 0:
			added = append(added, cur[j])
			j++
		default:
			i++
			j++
		}
	}
	removed = append(removed, old[i:]...)
	added = append(added, cur[j:]...)
	return added, removed
}

// Fold applies one event to a folded answer state and returns the new
// rows. It is strict: a diff removing an absent row or adding a present
// one errors, because it means the producer and consumer disagree on the
// previous state — exactly the bug class the differential tests hunt.
func Fold(rows [][]graph.NodeID, ev Event) ([][]graph.NodeID, error) {
	switch ev.Type {
	case TypeInit, TypeResync:
		return ev.Rows, nil
	case TypeHeartbeat:
		return rows, nil
	case TypeDiff:
		return applyDiff(rows, ev.Removed, ev.Added)
	}
	return rows, fmt.Errorf("sub: unknown event type %q", ev.Type)
}

// applyDiff merges a sorted diff into sorted rows.
func applyDiff(rows, removed, added [][]graph.NodeID) ([][]graph.NodeID, error) {
	// Remove first: removed ⊆ rows must hold.
	kept := make([][]graph.NodeID, 0, len(rows))
	i := 0
	for _, r := range removed {
		for i < len(rows) && rowCompare(rows[i], r) < 0 {
			kept = append(kept, rows[i])
			i++
		}
		if i >= len(rows) || rowCompare(rows[i], r) != 0 {
			return nil, fmt.Errorf("sub: diff removes absent row %v", r)
		}
		i++
	}
	kept = append(kept, rows[i:]...)
	// Insert added: added ∩ kept must be empty.
	out := make([][]graph.NodeID, 0, len(kept)+len(added))
	i = 0
	for _, a := range added {
		for i < len(kept) && rowCompare(kept[i], a) < 0 {
			out = append(out, kept[i])
			i++
		}
		if i < len(kept) && rowCompare(kept[i], a) == 0 {
			return nil, fmt.Errorf("sub: diff adds duplicate row %v", a)
		}
		out = append(out, a)
	}
	out = append(out, kept[i:]...)
	return out, nil
}
