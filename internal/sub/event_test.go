package sub

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"boundedg/internal/graph"
)

func rows(vals ...[]graph.NodeID) [][]graph.NodeID { return vals }

func row(ids ...graph.NodeID) []graph.NodeID { return ids }

// TestEventRoundTrip writes every event shape through the SSE codec and
// demands the decoded frame be structurally identical — the loadgen
// subscribers and the differential harness both depend on this codec
// being lossless.
func TestEventRoundTrip(t *testing.T) {
	events := []Event{
		{Type: TypeInit, Epoch: 0, Rows: nil, Complete: true},
		{Type: TypeInit, Epoch: 7, Rows: rows(row(1, 2), row(3, 4)), Complete: false},
		{Type: TypeDiff, Epoch: 8, Added: rows(row(5, 6)), Removed: rows(row(1, 2)), Complete: true},
		{Type: TypeDiff, Epoch: 9, Vector: []uint64{3, 6}, Added: rows(row(0, 0))},
		{Type: TypeResync, Epoch: 10, Rows: rows(row(9)), Complete: true},
		{Type: TypeHeartbeat, Epoch: 11},
	}
	var buf bytes.Buffer
	for _, ev := range events {
		if err := WriteEvent(&buf, ev); err != nil {
			t.Fatalf("WriteEvent(%+v): %v", ev, err)
		}
	}
	dec := NewDecoder(&buf)
	for i, want := range events {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("event %d round trip:\ngot  %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

// TestWriteEventRejectsBadType pins the frame-injection guard: an event
// type carrying SSE syntax must be refused, not written.
func TestWriteEventRejectsBadType(t *testing.T) {
	for _, typ := range []string{"", "a\nb", "a\rb", "a:b"} {
		var buf bytes.Buffer
		if err := WriteEvent(&buf, Event{Type: typ}); err == nil {
			t.Fatalf("WriteEvent accepted type %q", typ)
		}
		if buf.Len() != 0 {
			t.Fatalf("WriteEvent wrote %q before rejecting type %q", buf.String(), typ)
		}
	}
}

// TestDecoderGrammar covers the SSE grammar cases a strict server never
// emits but a correct client must survive: CRLF line endings, comment
// lines, unknown fields, multi-line data, and leading blank lines.
func TestDecoderGrammar(t *testing.T) {
	in := strings.Join([]string{
		"",                   // leading blank line: not a frame
		": stream comment\r", // comment, CRLF
		"event: heartbeat\r", // CRLF terminated field
		"id: 42",             // unknown SSE field, skipped
		"data: {\"epoch\":",  // data split across two lines...
		"data: 5}",           // ...joined with \n, still valid JSON
		"\r",                 // CRLF frame terminator
		"event:diff",         // no space after the colon
		"data:{\"epoch\":6,\"added\":[[1]],\"complete\":true}",
		"",
	}, "\n") + "\n"
	dec := NewDecoder(strings.NewReader(in))

	ev, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != TypeHeartbeat || ev.Epoch != 5 {
		t.Fatalf("first frame: %+v", ev)
	}
	ev, err = dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != TypeDiff || ev.Epoch != 6 || !ev.Complete || len(ev.Added) != 1 {
		t.Fatalf("second frame: %+v", ev)
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

// TestDecoderTruncation distinguishes a clean close from a mid-frame
// kill: the reconnect logic relies on io.EOF vs io.ErrUnexpectedEOF to
// know whether the last frame can be trusted.
func TestDecoderTruncation(t *testing.T) {
	var full bytes.Buffer
	if err := WriteEvent(&full, Event{Type: TypeDiff, Epoch: 3, Added: rows(row(1, 2))}); err != nil {
		t.Fatal(err)
	}
	frame := full.Bytes()

	// Clean close at every frame boundary (0 or 1 complete frames).
	dec := NewDecoder(bytes.NewReader(nil))
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
	dec = NewDecoder(bytes.NewReader(frame))
	if _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("after full frame: got %v, want io.EOF", err)
	}

	// A kill at any byte inside the frame must be io.ErrUnexpectedEOF.
	for cut := 1; cut < len(frame); cut++ {
		dec := NewDecoder(bytes.NewReader(frame[:cut]))
		if _, err := dec.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d/%d bytes: got %v, want io.ErrUnexpectedEOF", cut, len(frame), err)
		}
	}
}

// TestDecoderFrameWithoutEvent is a named regression: a frame that ends
// without an event field is a protocol error, not a zero event.
func TestDecoderFrameWithoutEvent(t *testing.T) {
	dec := NewDecoder(strings.NewReader("data: {\"epoch\":1}\n\n"))
	if _, err := dec.Next(); err == nil || err == io.EOF {
		t.Fatalf("frame without event field: got %v, want protocol error", err)
	}
}

// TestDecoderBadPayload is a named regression: malformed JSON in a data
// line must surface as an error naming the event type.
func TestDecoderBadPayload(t *testing.T) {
	dec := NewDecoder(strings.NewReader("event: diff\ndata: {not json\n\n"))
	_, err := dec.Next()
	if err == nil || !strings.Contains(err.Error(), "diff") {
		t.Fatalf("bad payload: got %v, want error naming the event type", err)
	}
}

// TestDiffRowsTable pins the merge walk on hand cases.
func TestDiffRowsTable(t *testing.T) {
	cases := []struct {
		old, cur, added, removed [][]graph.NodeID
	}{
		{nil, nil, nil, nil},
		{nil, rows(row(1)), rows(row(1)), nil},
		{rows(row(1)), nil, nil, rows(row(1))},
		{rows(row(1), row(2)), rows(row(1), row(2)), nil, nil},
		{rows(row(1), row(3)), rows(row(2), row(3)), rows(row(2)), rows(row(1))},
		{rows(row(1, 2)), rows(row(1, 2, 3)), rows(row(1, 2, 3)), rows(row(1, 2))},
	}
	for i, c := range cases {
		added, removed := DiffRows(c.old, c.cur)
		if !reflect.DeepEqual(added, c.added) || !reflect.DeepEqual(removed, c.removed) {
			t.Fatalf("case %d: added %v removed %v, want %v / %v", i, added, removed, c.added, c.removed)
		}
	}
}

// TestDiffFoldProperty is the algebraic property the whole stream
// protocol rests on: for random sorted row sets A and B,
// Fold(A, diff(A→B)) == B exactly.
func TestDiffFoldProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	randomRows := func() [][]graph.NodeID {
		n := rng.Intn(20)
		seen := map[[2]graph.NodeID]bool{}
		var rs [][]graph.NodeID
		for len(rs) < n {
			r := [2]graph.NodeID{graph.NodeID(rng.Intn(12)), graph.NodeID(rng.Intn(12))}
			if !seen[r] {
				seen[r] = true
				rs = append(rs, []graph.NodeID{r[0], r[1]})
			}
		}
		for i := range rs {
			for j := i + 1; j < len(rs); j++ {
				if rowCompare(rs[j], rs[i]) < 0 {
					rs[i], rs[j] = rs[j], rs[i]
				}
			}
		}
		return rs
	}
	for trial := 0; trial < 200; trial++ {
		a, b := randomRows(), randomRows()
		added, removed := DiffRows(a, b)
		got, err := Fold(a, Event{Type: TypeDiff, Added: added, Removed: removed})
		if err != nil {
			t.Fatalf("trial %d: fold: %v", trial, err)
		}
		if !reflect.DeepEqual(got, b) && !(len(got) == 0 && len(b) == 0) {
			t.Fatalf("trial %d: fold(a, diff) = %v, want %v (a=%v)", trial, got, b, a)
		}
	}
}

// TestFoldStrictness: a diff that disagrees with the folded state must
// error — this is the tripwire the differential harness relies on.
func TestFoldStrictness(t *testing.T) {
	state := rows(row(1), row(3))
	if _, err := Fold(state, Event{Type: TypeDiff, Removed: rows(row(2))}); err == nil {
		t.Fatal("removing an absent row folded silently")
	}
	if _, err := Fold(state, Event{Type: TypeDiff, Added: rows(row(3))}); err == nil {
		t.Fatal("adding a duplicate row folded silently")
	}
	if _, err := Fold(state, Event{Type: "bogus"}); err == nil {
		t.Fatal("unknown event type folded silently")
	}
	// Named regression: a diff removing more rows than the state holds
	// must error cleanly, not panic on a negative capacity.
	if _, err := Fold(nil, Event{Type: TypeDiff, Removed: rows(row(1), row(2))}); err == nil {
		t.Fatal("removing from an empty state folded silently")
	}
	// Heartbeats and resyncs never consult the previous state.
	if got, err := Fold(state, Event{Type: TypeHeartbeat, Epoch: 9}); err != nil || !reflect.DeepEqual(got, state) {
		t.Fatalf("heartbeat fold: %v %v", got, err)
	}
	if got, err := Fold(state, Event{Type: TypeResync, Rows: rows(row(8))}); err != nil || !reflect.DeepEqual(got, rows(row(8))) {
		t.Fatalf("resync fold: %v %v", got, err)
	}
}
