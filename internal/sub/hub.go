// Package sub implements continuous queries: subscriptions that follow
// epoch publication and stream incremental answer diffs.
//
// A Hub owns one dispatcher goroutine that sleeps on the engine's
// publish signal. On each published epoch it walks the registered
// subscriptions and, per subscription, either proves the answer
// unchanged (the retained read footprint is disjoint from the changed
// rows and labels the changelog ring reports — the same proof the
// server's result cache uses for revalidation) or re-evaluates the
// pattern at the current snapshot and diffs against the retained
// previous answer. Diffs land in a bounded per-subscription queue; a
// consumer that falls behind loses the incremental stream — the queue
// is wiped and a resync (full answer) is forced — so a slow or stalled
// consumer never costs the commit path or the dispatcher more than a
// mutex tap. The HTTP transport (SSE framing, attach/detach, heartbeat
// cadence) lives in internal/server; this package owns the protocol
// invariants.
package sub

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
	"boundedg/internal/runtime"
)

// ErrTooManySubs is returned by Register at the configured cap.
var ErrTooManySubs = errors.New("sub: too many subscriptions")

// ErrClosed is returned by Register after Close.
var ErrClosed = errors.New("sub: hub closed")

// Config parameterizes a Hub.
type Config struct {
	// MaxSubs caps concurrently registered subscriptions (0 = 64).
	MaxSubs int
	// QueueCap bounds each subscription's pending event queue; overflow
	// wipes the queue and forces a resync (0 = 64).
	QueueCap int
	// Timeout bounds each re-evaluation (0 = none).
	Timeout time.Duration
	// MaxSteps bounds each re-evaluation's search-tree visits
	// (0 = unlimited), normally the server's query step budget.
	MaxSteps int
}

func (c Config) withDefaults() Config {
	if c.MaxSubs == 0 {
		c.MaxSubs = 64
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	return c
}

// Stats are a Hub's cumulative counters, served under "subscriptions"
// in GET /stats.
type Stats struct {
	// Active is the number of registered subscriptions right now.
	Active int
	// Events counts diff events enqueued for delivery.
	Events uint64
	// Resyncs counts forced resyncs: queue overflows plus dispatcher
	// evaluation failures.
	Resyncs uint64
	// Skipped counts publications a subscription ignored because its
	// footprint proved the answer unchanged — no re-evaluation ran.
	Skipped uint64
	// Evals counts engine evaluations performed on behalf of
	// subscriptions (dispatcher re-evaluations plus full evaluations on
	// attach and resync).
	Evals uint64
}

// Hub registers subscriptions and dispatches epoch publications to
// them. Construct with NewHub; Close stops the dispatcher and closes
// every subscription.
type Hub struct {
	eng *runtime.Engine
	cfg Config

	mu     sync.Mutex
	subs   map[uint64]*Sub
	nextID uint64
	closed bool

	stop chan struct{}
	done chan struct{}

	events, resyncs, skipped, evals atomic.Uint64
}

// NewHub starts a hub (and its dispatcher goroutine) over eng.
func NewHub(eng *runtime.Engine, cfg Config) *Hub {
	h := &Hub{
		eng:  eng,
		cfg:  cfg.withDefaults(),
		subs: make(map[uint64]*Sub),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go h.run()
	return h
}

// Register adds a subscription for pat (subgraph semantics) whose
// answers are capped at limit matches. The pattern must be parsed
// against the engine's interner; reusing one *pattern.Pattern across
// subscriptions shares the engine's plan-cache entry.
func (h *Hub) Register(pat *pattern.Pattern, limit int) (*Sub, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if len(h.subs) >= h.cfg.MaxSubs {
		return nil, ErrTooManySubs
	}
	h.nextID++
	s := &Sub{
		id:     h.nextID,
		h:      h,
		pat:    pat,
		limit:  limit,
		poke:   make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
	h.subs[s.id] = s
	return s, nil
}

// Get returns the subscription with the given id.
func (h *Hub) Get(id uint64) (*Sub, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.subs[id]
	return s, ok
}

// Unsubscribe removes and closes the subscription, ending any live
// event stream.
func (h *Hub) Unsubscribe(id uint64) bool {
	h.mu.Lock()
	s, ok := h.subs[id]
	delete(h.subs, id)
	h.mu.Unlock()
	if ok {
		s.close()
	}
	return ok
}

// Close stops the dispatcher (waiting for it to exit) and closes every
// subscription. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		<-h.done
		return
	}
	h.closed = true
	subs := make([]*Sub, 0, len(h.subs))
	for _, s := range h.subs {
		subs = append(subs, s)
	}
	h.subs = make(map[uint64]*Sub)
	h.mu.Unlock()
	close(h.stop)
	<-h.done
	for _, s := range subs {
		s.close()
	}
}

// Stats returns the hub's counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	n := len(h.subs)
	h.mu.Unlock()
	return Stats{
		Active:  n,
		Events:  h.events.Load(),
		Resyncs: h.resyncs.Load(),
		Skipped: h.skipped.Load(),
		Evals:   h.evals.Load(),
	}
}

// run is the dispatcher loop. The wakeup protocol cannot miss a
// publication: the signal channel is grabbed BEFORE reading the
// version, so a commit that lands between the read and the sleep has
// already closed the channel we block on. Consecutive commits may
// coalesce into one wake; dispatchOne then certifies the latest
// version, and every event stays a point claim at its own epoch.
func (h *Hub) run() {
	defer close(h.done)
	for {
		sig := h.eng.PublishSignal()
		ver := h.eng.Version()
		h.mu.Lock()
		subs := make([]*Sub, 0, len(h.subs))
		for _, s := range h.subs {
			subs = append(subs, s)
		}
		h.mu.Unlock()
		for _, s := range subs {
			select {
			case <-h.stop:
				return
			default:
			}
			h.dispatchOne(s, ver)
		}
		select {
		case <-sig:
		case <-h.stop:
			return
		}
	}
}

// dispatchOne brings one subscription up to ver. Detached and
// resync-pending subscriptions are skipped outright — their next
// attach or resync full-evaluates anyway, so a slow consumer costs the
// dispatcher nothing. Otherwise the footprint proof is tried first:
// if every epoch in (certified, ver] changed no row or label the last
// evaluation read, the answer is bit-identical and only the certified
// mark advances. Only then does an engine re-evaluation run.
func (h *Hub) dispatchOne(s *Sub, ver uint64) {
	s.smu.Lock()
	defer s.smu.Unlock()
	if !s.primed || s.certified >= ver {
		return
	}
	s.qmu.Lock()
	idle := !s.attached || s.resync
	s.qmu.Unlock()
	if idle {
		return
	}
	if s.fp != nil {
		if sum, ok := h.eng.ChangedSince(s.certified); ok && sum.Epoch >= ver && s.fp.Disjoint(sum.Rows, sum.Labels) {
			s.certified = sum.Epoch
			if sum.Vector != nil {
				s.vector = sum.Vector
			}
			s.cert.Store(s.certified)
			h.skipped.Add(1)
			return
		}
	}
	res := h.eval(context.Background(), s)
	if res.Err != nil || res.Sub == nil {
		s.ForceResync()
		return
	}
	rows := sortedRows(res.Sub.Matches)
	added, removed := DiffRows(s.rows, rows)
	changed := len(added) > 0 || len(removed) > 0 || s.complete != res.Sub.Completed
	s.rows, s.complete = rows, res.Sub.Completed
	s.certified, s.vector, s.fp = res.Epoch, res.Vector, res.Footprint
	if changed {
		s.enqueue(Event{
			Type:     TypeDiff,
			Epoch:    res.Epoch,
			Vector:   res.Vector,
			Added:    added,
			Removed:  removed,
			Complete: res.Sub.Completed,
		})
		h.events.Add(1)
	}
	// Advance the heartbeat-visible mark only after the diff is queued:
	// a heartbeat must never certify an epoch whose diff the consumer
	// has not been offered yet.
	s.cert.Store(res.Epoch)
}

// eval runs one engine evaluation for s under the hub's budget. The
// footprint is always recorded — it funds the next skip proof.
func (h *Hub) eval(ctx context.Context, s *Sub) runtime.Result {
	if h.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, h.cfg.Timeout)
		defer cancel()
	}
	h.evals.Add(1)
	return h.eng.Eval(ctx, runtime.Query{
		Pattern:       s.pat,
		Sem:           core.Subgraph,
		Sub:           match.SubgraphOptions{StoreMatches: true, MaxMatches: s.limit, MaxSteps: h.cfg.MaxSteps},
		NeedFootprint: true,
	})
}

func sortedRows(ms [][]graph.NodeID) [][]graph.NodeID {
	rows := make([][]graph.NodeID, len(ms))
	for i, m := range ms {
		rows[i] = append([]graph.NodeID(nil), m...)
	}
	match.SortMatches(rows)
	return rows
}

// Sub is one registered subscription. The dispatcher produces into its
// bounded queue; at most one consumer (the latest attached SSE handler)
// drains it via Attach/TakeEvents/FullEval.
//
// Lock order: smu (evaluation state, held across engine evaluations)
// then qmu (queue and attachment); never the reverse.
type Sub struct {
	id    uint64
	h     *Hub
	pat   *pattern.Pattern
	limit int

	// smu guards the retained evaluation state.
	smu       sync.Mutex
	primed    bool // first full evaluation done; dispatcher may diff
	rows      [][]graph.NodeID
	complete  bool
	certified uint64
	vector    []uint64
	fp        *core.Footprint

	// cert mirrors certified for lock-free heartbeat reads; it advances
	// only after the diff certifying it has been enqueued.
	cert atomic.Uint64

	// qmu guards the delivery side.
	qmu      sync.Mutex
	queue    []Event
	resync   bool   // queue dropped; consumer must full-resync
	gen      uint64 // attach generation: a newer attach preempts older readers
	attached bool

	poke      chan struct{} // 1-buffered consumer wakeup
	closed    chan struct{}
	closeOnce sync.Once
}

// ID returns the subscription's identifier.
func (s *Sub) ID() uint64 { return s.id }

// Limit returns the subscription's match cap.
func (s *Sub) Limit() int { return s.limit }

// Certified returns the epoch through which the current answer is
// certified — what an idle heartbeat may claim.
func (s *Sub) Certified() uint64 { return s.cert.Load() }

// Poke returns the consumer wakeup channel: it receives after events
// are enqueued, a resync is forced, or a newer consumer attaches.
func (s *Sub) Poke() <-chan struct{} { return s.poke }

// Closed returns a channel closed when the subscription is removed.
func (s *Sub) Closed() <-chan struct{} { return s.closed }

func (s *Sub) close() { s.closeOnce.Do(func() { close(s.closed) }) }

func (s *Sub) wake() {
	select {
	case s.poke <- struct{}{}:
	default:
	}
}

// enqueue appends a diff for delivery, or — at the queue bound — wipes
// the queue and flags a resync: the consumer is too slow for the
// incremental stream, and a bounded queue is what keeps it from ever
// back-pressuring the dispatcher or the commit path.
func (s *Sub) enqueue(ev Event) {
	s.qmu.Lock()
	switch {
	case s.resync:
		// Already dropped; the resync will cover this epoch too.
	case len(s.queue) >= s.h.cfg.QueueCap:
		s.queue = nil
		s.resync = true
		s.h.resyncs.Add(1)
	default:
		s.queue = append(s.queue, ev)
	}
	s.qmu.Unlock()
	s.wake()
}

// ForceResync drops the incremental stream: the pending queue is wiped
// and the next TakeEvents reports that the consumer must re-establish
// state via FullEval. The dispatcher calls it after an evaluation
// failure; fault-injection tests call it to exercise the resync path
// deterministically.
func (s *Sub) ForceResync() {
	s.qmu.Lock()
	if !s.resync {
		s.resync = true
		s.queue = nil
		s.h.resyncs.Add(1)
	}
	s.qmu.Unlock()
	s.wake()
}

// Attach claims the consumer side. The returned generation must
// accompany TakeEvents and Detach; attaching again (a reconnect)
// preempts the previous consumer, whose next TakeEvents reports it.
// Returns false if the subscription is closed.
func (s *Sub) Attach() (uint64, bool) {
	select {
	case <-s.closed:
		return 0, false
	default:
	}
	s.qmu.Lock()
	s.gen++
	gen := s.gen
	s.attached = true
	s.queue = nil // stale diffs predate the attach's init answer
	s.qmu.Unlock()
	s.wake()
	return gen, true
}

// Detach releases the consumer side if gen still owns it.
func (s *Sub) Detach(gen uint64) {
	s.qmu.Lock()
	if s.gen == gen {
		s.attached = false
	}
	s.qmu.Unlock()
}

// TakeEvents drains the pending queue. needResync reports that the
// incremental stream was dropped: the events returned alongside it are
// always empty, and the consumer must FullEval and emit a resync before
// reading on. ok is false when a newer consumer preempted gen.
func (s *Sub) TakeEvents(gen uint64) (evs []Event, needResync, ok bool) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.gen != gen {
		return nil, false, false
	}
	evs = s.queue
	s.queue = nil
	return evs, s.resync, true
}

// FullEval evaluates the pattern in full at the current snapshot,
// replaces the retained answer, clears any pending resync, and returns
// the corresponding full-answer event (the caller stamps Type as init
// or resync). It holds the evaluation state for the duration, so a
// concurrent dispatcher diff serializes against it: any diff it
// enqueues afterwards is relative to the rows returned here.
func (s *Sub) FullEval(ctx context.Context) (Event, error) {
	s.smu.Lock()
	defer s.smu.Unlock()
	res := s.h.eval(ctx, s)
	if res.Err != nil {
		return Event{}, res.Err
	}
	if res.Sub == nil {
		return Event{}, errors.New("sub: evaluation returned no subgraph result")
	}
	rows := sortedRows(res.Sub.Matches)
	s.qmu.Lock()
	s.queue = nil
	s.resync = false
	s.qmu.Unlock()
	s.rows, s.complete = rows, res.Sub.Completed
	s.certified, s.vector, s.fp = res.Epoch, res.Vector, res.Footprint
	s.primed = true
	s.cert.Store(res.Epoch)
	return Event{Epoch: res.Epoch, Vector: res.Vector, Rows: rows, Complete: res.Sub.Completed}, nil
}
