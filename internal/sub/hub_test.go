package sub

import (
	"context"
	"reflect"
	"testing"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
	"boundedg/internal/runtime"
	"boundedg/internal/workload"
)

// moviePattern is effectively bounded under the IMDb workload schema
// (the same query cmd/boundedgd's stack test leans on). Vars order:
// u1 award, u2 year, u3 movie.
const moviePattern = "u1: award\nu2: year\nu3: movie\nu3 -> u1, u2"

func newTestEngine(t *testing.T) (*runtime.Engine, *workload.Dataset) {
	t.Helper()
	d := workload.IMDb(0.05, 7)
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatalf("index build: %v", viols[0])
	}
	eng, err := runtime.New(d.G, idx, runtime.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng, d
}

func parsePattern(t *testing.T, d *workload.Dataset, src string) *pattern.Pattern {
	t.Helper()
	q, err := pattern.Parse(src, d.In)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHubRegisterLifecycle covers the registration surface: the cap, id
// handout, unsubscribe semantics and the closed-hub refusal.
func TestHubRegisterLifecycle(t *testing.T) {
	eng, d := newTestEngine(t)
	h := NewHub(eng, Config{MaxSubs: 2})
	q := parsePattern(t, d, moviePattern)

	s1, err := h.Register(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Register(q, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Register(q, 10); err != ErrTooManySubs {
		t.Fatalf("over-cap register: %v, want ErrTooManySubs", err)
	}
	if got, ok := h.Get(s1.ID()); !ok || got != s1 {
		t.Fatalf("Get(%d) = %v, %v", s1.ID(), got, ok)
	}
	if st := h.Stats(); st.Active != 2 {
		t.Fatalf("Active = %d, want 2", st.Active)
	}

	if !h.Unsubscribe(s1.ID()) {
		t.Fatal("Unsubscribe returned false for a live id")
	}
	select {
	case <-s1.Closed():
	default:
		t.Fatal("unsubscribed sub not closed")
	}
	if h.Unsubscribe(s1.ID()) {
		t.Fatal("double Unsubscribe returned true")
	}
	if _, ok := s1.Attach(); ok {
		t.Fatal("Attach succeeded on a closed sub")
	}
	s3, err := h.Register(q, 10)
	if err != nil {
		t.Fatalf("register after unsubscribe freed a slot: %v", err)
	}

	h.Close()
	h.Close() // idempotent
	if _, err := h.Register(q, 10); err != ErrClosed {
		t.Fatalf("register after close: %v, want ErrClosed", err)
	}
	select {
	case <-s3.Closed():
	default:
		t.Fatal("hub close did not close the remaining sub")
	}
}

// TestSubAttachPreemption: a reconnect (second Attach) must preempt the
// previous consumer — its generation stops draining — and wipe stale
// queued diffs, since the new stream opens with a full init answer.
func TestSubAttachPreemption(t *testing.T) {
	eng, d := newTestEngine(t)
	h := NewHub(eng, Config{})
	defer h.Close()
	s, err := h.Register(parsePattern(t, d, moviePattern), 10)
	if err != nil {
		t.Fatal(err)
	}

	gen1, ok := s.Attach()
	if !ok {
		t.Fatal("first attach failed")
	}
	s.enqueue(Event{Type: TypeDiff, Epoch: 1})
	gen2, ok := s.Attach()
	if !ok {
		t.Fatal("second attach failed")
	}
	if _, _, ok := s.TakeEvents(gen1); ok {
		t.Fatal("preempted generation still drains")
	}
	evs, needResync, ok := s.TakeEvents(gen2)
	if !ok || needResync || len(evs) != 0 {
		t.Fatalf("fresh generation: evs=%v resync=%v ok=%v (stale diff must be wiped)", evs, needResync, ok)
	}

	// Detach by a stale generation must not release the live consumer.
	s.Detach(gen1)
	s.qmu.Lock()
	attached := s.attached
	s.qmu.Unlock()
	if !attached {
		t.Fatal("stale Detach released the live consumer")
	}
	s.Detach(gen2)
}

// subEval mirrors the hub's evaluation settings for oracle answers.
func subEval(t *testing.T, eng *runtime.Engine, q *pattern.Pattern, limit int) [][]graph.NodeID {
	t.Helper()
	res := eng.Eval(context.Background(), runtime.Query{
		Pattern: q,
		Sem:     core.Subgraph,
		Sub:     match.SubgraphOptions{StoreMatches: true, MaxMatches: limit},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return sortedRows(res.Sub.Matches)
}

// TestHubOverflowForcesResync drives the deterministic overflow path: a
// consumer that attaches but never drains gets its queue wiped at the
// bound, TakeEvents reports the dropped stream, and FullEval restores a
// state identical to a fresh engine evaluation. Commits never block on
// the stalled consumer — each ApplyDelta below completes while the queue
// is already full.
func TestHubOverflowForcesResync(t *testing.T) {
	eng, d := newTestEngine(t)
	h := NewHub(eng, Config{QueueCap: 2})
	defer h.Close()
	q := parsePattern(t, d, moviePattern)
	s, err := h.Register(q, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	gen, ok := s.Attach()
	if !ok {
		t.Fatal("attach failed")
	}
	init, err := s.FullEval(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var movies []graph.NodeID
	seen := map[graph.NodeID]bool{}
	for _, r := range init.Rows {
		if m := r[2]; !seen[m] {
			seen[m] = true
			movies = append(movies, m)
		}
	}
	if len(movies) < 4 {
		t.Fatalf("only %d distinct matched movies; dataset too small to overflow a 2-deep queue", len(movies))
	}

	// Each accepted deletion changes the answer, so each dispatch
	// produces one diff; waiting for the certified mark between commits
	// defeats wakeup coalescing. Diffs 1 and 2 fill the queue, diff 3
	// overflows it.
	applied := 0
	for _, m := range movies {
		out, err := eng.ApplyDelta(&graph.Delta{DelNodes: []graph.NodeID{m}})
		if err != nil {
			continue // schema bound rejection: try the next movie
		}
		applied++
		waitFor(t, "dispatcher to certify the deletion epoch", func() bool {
			return s.Certified() >= out.Epoch
		})
		if applied == 3 {
			break
		}
	}
	if applied < 3 {
		t.Fatalf("only %d deletions accepted", applied)
	}

	st := h.Stats()
	if st.Resyncs != 1 {
		t.Fatalf("Resyncs = %d, want 1 (exactly one overflow)", st.Resyncs)
	}
	if st.Events != 3 {
		t.Fatalf("Events = %d, want 3 diffs produced", st.Events)
	}
	evs, needResync, ok := s.TakeEvents(gen)
	if !ok || !needResync || len(evs) != 0 {
		t.Fatalf("after overflow: evs=%d resync=%v ok=%v, want empty queue with resync pending", len(evs), needResync, ok)
	}

	rv, err := s.FullEval(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := subEval(t, eng, q, 1<<20); !reflect.DeepEqual(rv.Rows, want) {
		t.Fatalf("resync answer diverges from a fresh evaluation: %d vs %d rows", len(rv.Rows), len(want))
	}
	if _, needResync, _ := s.TakeEvents(gen); needResync {
		t.Fatal("FullEval did not clear the resync flag")
	}
}

// TestHubFootprintSkip proves the dispatcher's skip path: an update
// disjoint from a subscription's read footprint advances its certified
// mark without re-evaluating and without producing an event — the same
// proof the result cache uses for revalidation.
func TestHubFootprintSkip(t *testing.T) {
	eng, d := newTestEngine(t)
	h := NewHub(eng, Config{})
	defer h.Close()
	q := parsePattern(t, d, moviePattern)
	s, err := h.Register(q, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	gen, ok := s.Attach()
	if !ok {
		t.Fatal("attach failed")
	}
	if _, err := s.FullEval(context.Background()); err != nil {
		t.Fatal(err)
	}
	evals0 := h.Stats().Evals

	// A pad region under a label the pattern never reads: changes there
	// are provably invisible to the subscription.
	patternLabels := map[string]bool{"award": true, "year": true, "movie": true}
	var epoch uint64
	added := false
	for _, l := range d.G.Labels() {
		if patternLabels[d.In.Name(l)] {
			continue
		}
		out, err := eng.ApplyDelta(&graph.Delta{
			AddNodes: []graph.NodeSpec{{Label: l}, {Label: l}},
			AddEdges: [][2]graph.NodeID{{graph.NewNodeRef(0), graph.NewNodeRef(1)}},
		})
		if err == nil {
			epoch, added = out.Epoch, true
			break
		}
	}
	if !added {
		t.Skip("no off-pattern label has schema headroom for a pad region")
	}

	waitFor(t, "dispatcher to certify the disjoint update", func() bool {
		return s.Certified() >= epoch
	})
	st := h.Stats()
	if st.Evals != evals0 {
		t.Fatalf("Evals = %d, want %d: a disjoint update must be skipped, not re-evaluated", st.Evals, evals0)
	}
	if st.Skipped == 0 {
		t.Fatal("Skipped = 0, want at least one footprint skip")
	}
	if evs, needResync, ok := s.TakeEvents(gen); !ok || needResync || len(evs) != 0 {
		t.Fatalf("skip produced delivery-side activity: evs=%d resync=%v ok=%v", len(evs), needResync, ok)
	}
}
