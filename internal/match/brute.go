package match

import (
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// BruteSubgraph enumerates Q(G) under subgraph isomorphism by exhaustive
// injective assignment with leaf-only verification. It is deliberately
// unoptimized and structurally independent of VF2, serving as the oracle
// in property-based tests. Use only on tiny inputs.
func BruteSubgraph(q *pattern.Pattern, g *graph.Graph) [][]graph.NodeID {
	n := q.NumNodes()
	var out [][]graph.NodeID
	assign := make([]graph.NodeID, n)
	nodes := g.NodeList()

	var rec func(u int)
	rec = func(u int) {
		if u == n {
			if bruteCheck(q, g, assign) {
				out = append(out, append([]graph.NodeID(nil), assign...))
			}
			return
		}
		for _, v := range nodes {
			dup := false
			for i := 0; i < u; i++ {
				if assign[i] == v {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			assign[u] = v
			rec(u + 1)
		}
	}
	rec(0)
	SortMatches(out)
	return out
}

// bruteCheck verifies a full assignment: injectivity is ensured by the
// enumeration; check labels, predicates and every pattern edge.
func bruteCheck(q *pattern.Pattern, g *graph.Graph, assign []graph.NodeID) bool {
	for ui := range assign {
		if !q.MatchesNode(pattern.Node(ui), g, assign[ui]) {
			return false
		}
	}
	ok := true
	q.Edges(func(from, to pattern.Node) bool {
		if !g.HasEdge(assign[from], assign[to]) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// BruteSim computes the maximum simulation by the naive "remove until no
// change" fixpoint, as the oracle for GSim in property tests.
func BruteSim(q *pattern.Pattern, g *graph.Graph) *SimResult {
	n := q.NumNodes()
	sim := make([]map[graph.NodeID]struct{}, n)
	for ui := 0; ui < n; ui++ {
		u := pattern.Node(ui)
		set := make(map[graph.NodeID]struct{})
		for _, v := range g.NodesByLabel(q.LabelOf(u)) {
			if q.MatchesNode(u, g, v) {
				set[v] = struct{}{}
			}
		}
		sim[ui] = set
	}
	for changed := true; changed; {
		changed = false
		q.Edges(func(from, to pattern.Node) bool {
			for v := range sim[from] {
				ok := false
				for _, w := range g.Out(v) {
					if _, in := sim[to][w]; in {
						ok = true
						break
					}
				}
				if !ok {
					delete(sim[from], v)
					changed = true
				}
			}
			return true
		})
	}
	res := &SimResult{Sim: make([][]graph.NodeID, n), Matched: true}
	for ui := 0; ui < n; ui++ {
		if len(sim[ui]) == 0 {
			res.Matched = false
		}
	}
	if !res.Matched {
		return res
	}
	for ui := 0; ui < n; ui++ {
		for v := range sim[ui] {
			res.Sim[ui] = append(res.Sim[ui], v)
		}
		sortIDs(res.Sim[ui])
	}
	return res
}
