package match

import (
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// VF2WithCandidates runs the VF2 search with externally supplied candidate
// sets (cands[u] restricts pattern node u; nil entries mean unrestricted).
// Bounded evaluation (bVF2) uses this to match inside the fetched subgraph
// GQ with the plan's maximally reduced cmat sets.
func VF2WithCandidates(q *pattern.Pattern, g *graph.Graph, cands [][]graph.NodeID, opt SubgraphOptions) *SubgraphResult {
	return vf2(q, g, cands, opt)
}

// GSimWithCandidates runs graph simulation with externally supplied
// initial candidate sets; bounded evaluation (bSim) uses it on GQ.
func GSimWithCandidates(q *pattern.Pattern, g *graph.Graph, cands [][]graph.NodeID) *SimResult {
	return gsim(q, g, cands)
}
