package match

import (
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// VF2WithCandidates runs the VF2 search with externally supplied candidate
// sets (cands[u] restricts pattern node u; nil entries mean unrestricted).
// Bounded evaluation (bVF2) uses this to match inside the fetched subgraph
// GQ with the plan's maximally reduced cmat sets.
func VF2WithCandidates(q *pattern.Pattern, g *graph.Graph, cands [][]graph.NodeID, opt SubgraphOptions) *SubgraphResult {
	return vf2(q, g, cands, opt)
}

// GSimWithCandidates runs graph simulation with externally supplied
// initial candidate sets; bounded evaluation (bSim) uses it on GQ.
func GSimWithCandidates(q *pattern.Pattern, g *graph.Graph, cands [][]graph.NodeID) *SimResult {
	return gsim(q, g, cands, 1)
}

// VF2WithCandidatesFrozen is VF2WithCandidates with edge reads served by
// a frozen CSR snapshot of g (see graph.Freeze). The snapshot's sorted
// adjacency changes enumeration order — same match set, possibly
// different Matches order — while making the feasibility checks
// binary searches instead of edge-map probes. The engine's hot path.
func VF2WithCandidatesFrozen(q *pattern.Pattern, g *graph.Graph, fz *graph.Frozen, cands [][]graph.NodeID, opt SubgraphOptions) *SubgraphResult {
	return vf2On(q, adjacency{g: g, fz: fz}, cands, opt)
}
