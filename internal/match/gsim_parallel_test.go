package match

import (
	"reflect"
	"testing"

	"boundedg/internal/workload"
)

// TestGSimParallelMatchesSerial checks that parallel initialization leaves
// the simulation relation (and the Steps work measure) identical to the
// serial run across a randomized query load.
func TestGSimParallelMatchesSerial(t *testing.T) {
	d := workload.IMDb(0.1, 2)
	qs := workload.DefaultQueryGen.Generate(d, 25, 9)
	matched := 0
	for i, q := range qs {
		want := GSim(q, d.G)
		if want.Matched {
			matched++
		}
		for _, workers := range []int{2, 4, 8} {
			got := GSimParallel(q, d.G, workers)
			if got.Matched != want.Matched || got.Steps != want.Steps || !reflect.DeepEqual(got.Sim, want.Sim) {
				t.Fatalf("q[%d] workers=%d: parallel relation differs (matched %v/%v, steps %d/%d)",
					i, workers, got.Matched, want.Matched, got.Steps, want.Steps)
			}
		}
	}
	if matched == 0 {
		t.Fatalf("degenerate load: no query matched")
	}
}
