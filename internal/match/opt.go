package match

import (
	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// OptVF2 is the paper's optVF2 baseline: plain VF2 accelerated with the
// access-constraint indices, but *without* a bounded query plan. Type-1
// constraints pre-restrict the candidate universes of the pattern nodes
// they cover; everything else still scans G-sized candidate lists, so the
// cost remains dependent on |G| — which is exactly the gap the paper
// measures against bVF2.
func OptVF2(q *pattern.Pattern, g *graph.Graph, idx *access.IndexSet, opt SubgraphOptions) *SubgraphResult {
	return vf2(q, g, type1Candidates(q, idx), opt)
}

// OptGSim is the paper's optgsim baseline: graph simulation with type-1
// index-restricted initial candidate sets; the fixpoint still refines over
// G-sized sets for uncovered nodes.
func OptGSim(q *pattern.Pattern, g *graph.Graph, idx *access.IndexSet) *SimResult {
	return gsim(q, g, type1Candidates(q, idx), 1)
}

// type1Candidates returns initial candidate sets drawn from type-1
// constraint indices: cands[u] is the index's l-labeled node list when a
// type-1 constraint covers fQ(u), nil (unrestricted) otherwise.
func type1Candidates(q *pattern.Pattern, idx *access.IndexSet) [][]graph.NodeID {
	if idx == nil {
		return nil
	}
	schema := idx.Schema()
	cands := make([][]graph.NodeID, q.NumNodes())
	for ui := 0; ui < q.NumNodes(); ui++ {
		l := q.LabelOf(pattern.Node(ui))
		for _, ci := range schema.ByTarget(l) {
			if schema.At(ci).Type1() {
				cands[ui] = idx.Index(ci).Lookup(nil)
				break
			}
		}
	}
	return cands
}
