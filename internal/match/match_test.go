package match

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"boundedg/internal/access"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// triangleFixture: pattern A->B->C->A over a graph with one real triangle
// and assorted noise.
func triangleFixture(t testing.TB) (*pattern.Pattern, *graph.Graph, [3]graph.NodeID) {
	t.Helper()
	in := graph.NewInterner()
	q := pattern.New(in)
	a := q.AddNodeNamed("A", nil)
	b := q.AddNodeNamed("B", nil)
	c := q.AddNodeNamed("C", nil)
	q.MustAddEdge(a, b)
	q.MustAddEdge(b, c)
	q.MustAddEdge(c, a)

	g := graph.New(in)
	va := g.AddNodeNamed("A", graph.NoValue())
	vb := g.AddNodeNamed("B", graph.NoValue())
	vc := g.AddNodeNamed("C", graph.NoValue())
	g.MustAddEdge(va, vb)
	g.MustAddEdge(vb, vc)
	g.MustAddEdge(vc, va)
	// Noise: a broken triangle (missing closing edge).
	na := g.AddNodeNamed("A", graph.NoValue())
	nb := g.AddNodeNamed("B", graph.NoValue())
	nc := g.AddNodeNamed("C", graph.NoValue())
	g.MustAddEdge(na, nb)
	g.MustAddEdge(nb, nc)
	return q, g, [3]graph.NodeID{va, vb, vc}
}

func TestVF2FindsTriangle(t *testing.T) {
	q, g, tri := triangleFixture(t)
	res := VF2(q, g, SubgraphOptions{StoreMatches: true})
	if !res.Completed || res.Count != 1 {
		t.Fatalf("count = %d completed = %v", res.Count, res.Completed)
	}
	want := []graph.NodeID{tri[0], tri[1], tri[2]}
	if !reflect.DeepEqual(res.Matches[0], want) {
		t.Fatalf("match = %v, want %v", res.Matches[0], want)
	}
}

func TestVF2NoMatch(t *testing.T) {
	in := graph.NewInterner()
	q := pattern.New(in)
	a := q.AddNodeNamed("A", nil)
	b := q.AddNodeNamed("B", nil)
	q.MustAddEdge(a, b)
	g := graph.New(in)
	g.AddNodeNamed("A", graph.NoValue()) // no B at all
	res := VF2(q, g, SubgraphOptions{})
	if res.Count != 0 || !res.Completed {
		t.Fatalf("want zero matches, completed")
	}
}

func TestVF2PredicateFilter(t *testing.T) {
	in := graph.NewInterner()
	q := pattern.New(in)
	y := q.AddNodeNamed("year", pattern.Predicate{pattern.Ge(graph.IntValue(2011))})
	m := q.AddNodeNamed("movie", nil)
	q.MustAddEdge(m, y)

	g := graph.New(in)
	y1 := g.AddNodeNamed("year", graph.IntValue(2012))
	y2 := g.AddNodeNamed("year", graph.IntValue(2009))
	m1 := g.AddNodeNamed("movie", graph.NoValue())
	m2 := g.AddNodeNamed("movie", graph.NoValue())
	g.MustAddEdge(m1, y1)
	g.MustAddEdge(m2, y2)
	res := VF2(q, g, SubgraphOptions{StoreMatches: true})
	if res.Count != 1 {
		t.Fatalf("count = %d, want 1", res.Count)
	}
	if res.Matches[0][m] != m1 {
		t.Fatalf("wrong movie matched")
	}
}

func TestVF2MaxMatches(t *testing.T) {
	in := graph.NewInterner()
	q := pattern.New(in)
	a := q.AddNodeNamed("A", nil)
	b := q.AddNodeNamed("B", nil)
	q.MustAddEdge(a, b)
	g := graph.New(in)
	va := g.AddNodeNamed("A", graph.NoValue())
	for i := 0; i < 10; i++ {
		vb := g.AddNodeNamed("B", graph.NoValue())
		g.MustAddEdge(va, vb)
	}
	res := VF2(q, g, SubgraphOptions{MaxMatches: 3, StoreMatches: true})
	if res.Count != 3 || res.Completed {
		t.Fatalf("count = %d completed = %v, want 3, false", res.Count, res.Completed)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("stored %d", len(res.Matches))
	}
}

func TestVF2StepBudget(t *testing.T) {
	q, g, _ := triangleFixture(t)
	res := VF2(q, g, SubgraphOptions{MaxSteps: 1})
	if res.Completed {
		t.Fatalf("budget of 1 step should not complete")
	}
}

func TestVF2InjectivityRequired(t *testing.T) {
	// Pattern with two A-nodes both pointing at B needs two distinct
	// A-nodes in the data.
	in := graph.NewInterner()
	q := pattern.New(in)
	a1 := q.AddNodeNamed("A", nil)
	a2 := q.AddNodeNamed("A", nil)
	b := q.AddNodeNamed("B", nil)
	q.MustAddEdge(a1, b)
	q.MustAddEdge(a2, b)

	g := graph.New(in)
	va := g.AddNodeNamed("A", graph.NoValue())
	vb := g.AddNodeNamed("B", graph.NoValue())
	g.MustAddEdge(va, vb)
	if res := VF2(q, g, SubgraphOptions{}); res.Count != 0 {
		t.Fatalf("single A node cannot host two pattern A nodes; count=%d", res.Count)
	}
	va2 := g.AddNodeNamed("A", graph.NoValue())
	g.MustAddEdge(va2, vb)
	if res := VF2(q, g, SubgraphOptions{}); res.Count != 2 {
		t.Fatalf("count = %d, want 2 (both orderings)", res.Count)
	}
}

func TestGSimBasics(t *testing.T) {
	q, g, tri := triangleFixture(t)
	res := GSim(q, g)
	if !res.Matched {
		t.Fatalf("triangle should simulate")
	}
	// Only the real triangle participates: the broken one has no C->A
	// edge, so nc fails, hence nb fails, hence na fails.
	for ui, want := range tri {
		if len(res.Sim[ui]) != 1 || res.Sim[ui][0] != want {
			t.Fatalf("sim[%d] = %v, want [%d]", ui, res.Sim[ui], want)
		}
	}
	if res.Pairs() != 3 {
		t.Fatalf("pairs = %d", res.Pairs())
	}
	if !res.Has(0, tri[0]) || res.Has(0, tri[1]) {
		t.Fatalf("Has wrong")
	}
}

func TestGSimEmptyWhenSomeNodeUnmatched(t *testing.T) {
	in := graph.NewInterner()
	q := pattern.New(in)
	a := q.AddNodeNamed("A", nil)
	b := q.AddNodeNamed("B", nil)
	q.MustAddEdge(a, b)
	g := graph.New(in)
	g.AddNodeNamed("A", graph.NoValue())
	res := GSim(q, g)
	if res.Matched || res.Pairs() != 0 {
		t.Fatalf("should be empty relation")
	}
	if res.Has(a, 0) {
		t.Fatalf("Has on empty relation")
	}
}

// q1g1 builds the paper's Fig. 2 fixture. Q1: u1(A) <-> u2(B) with
// u3(C) -> u2 and u4(D) -> u2 (Example 9 constructs Q2 by reversing
// (u3,u2) and (u4,u2), so in Q1 those edges point INTO u2). G1: a cycle
// v1(A) -> v2(B) -> ... -> v2n(B) -> v1, plus vC -> v2n and vD -> v2n.
func q1g1(in *graph.Interner, nPairs int) (*pattern.Pattern, *graph.Graph, []graph.NodeID, graph.NodeID) {
	q := pattern.New(in)
	u1 := q.AddNodeNamed("A", nil)
	u2 := q.AddNodeNamed("B", nil)
	u3 := q.AddNodeNamed("C", nil)
	u4 := q.AddNodeNamed("D", nil)
	q.MustAddEdge(u1, u2)
	q.MustAddEdge(u2, u1)
	q.MustAddEdge(u3, u2)
	q.MustAddEdge(u4, u2)

	g := graph.New(in)
	cycle := make([]graph.NodeID, 0, 2*nPairs)
	for i := 0; i < nPairs; i++ {
		cycle = append(cycle, g.AddNodeNamed("A", graph.NoValue()))
		cycle = append(cycle, g.AddNodeNamed("B", graph.NoValue()))
	}
	for i := 0; i < len(cycle); i++ {
		g.MustAddEdge(cycle[i], cycle[(i+1)%len(cycle)])
	}
	vc := g.AddNodeNamed("C", graph.NoValue())
	vd := g.AddNodeNamed("D", graph.NoValue())
	v2n := cycle[len(cycle)-1]
	g.MustAddEdge(vc, v2n)
	g.MustAddEdge(vd, v2n)
	return q, g, cycle, v2n
}

// TestGSimNonLocalized reproduces Example 2 / Fig. 2: G1 matches Q1, u2
// matches every B of the cycle (v2, ..., v2n), and deciding this requires
// the whole unbounded cycle — the non-localized behavior of simulation.
func TestGSimNonLocalized(t *testing.T) {
	in := graph.NewInterner()
	nPairs := 5
	q, g, cycle, v2n := q1g1(in, nPairs)

	res := GSim(q, g)
	if !res.Matched {
		t.Fatalf("Q1 should match G1 (paper, Example 2)")
	}
	if len(res.Sim[1]) != nPairs { // u2 matches all B's
		t.Fatalf("sim[u2] = %v, want all %d B nodes", res.Sim[1], nPairs)
	}
	if len(res.Sim[0]) != nPairs { // u1 matches all A's
		t.Fatalf("sim[u1] = %v, want all %d A nodes", res.Sim[0], nPairs)
	}
	if !res.Has(1, v2n) || !res.Has(1, cycle[1]) {
		t.Fatalf("u2 must match v2 and v2n")
	}
	// u3/u4 match only the C/D nodes.
	if len(res.Sim[2]) != 1 || len(res.Sim[3]) != 1 {
		t.Fatalf("sim[u3]/sim[u4] = %v / %v", res.Sim[2], res.Sim[3])
	}
}

// TestGSimCycleBreakCascade checks the non-localized cascade: removing one
// cycle edge far from the C/D anchors empties the entire relation, because
// u1/u2 matches need the infinite unrolling the cycle provided.
func TestGSimCycleBreakCascade(t *testing.T) {
	in := graph.NewInterner()
	q, g, cycle, _ := q1g1(in, 5)
	if err := g.RemoveEdge(cycle[2], cycle[3]); err != nil {
		t.Fatal(err)
	}
	res := GSim(q, g)
	if res.Matched {
		t.Fatalf("broken cycle should empty the relation; sim sizes %d/%d",
			len(res.Sim[0]), len(res.Sim[1]))
	}
}

func TestGSimAgainstBruteProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := graph.NewInterner()
		q, g := randomQG(r, in)
		got := GSim(q, g)
		want := BruteSim(q, g)
		if got.Matched != want.Matched {
			t.Logf("seed %d: matched %v vs %v", seed, got.Matched, want.Matched)
			return false
		}
		if got.Matched && !reflect.DeepEqual(got.Sim, want.Sim) {
			t.Logf("seed %d: sim %v vs %v", seed, got.Sim, want.Sim)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVF2AgainstBruteProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := graph.NewInterner()
		q, g := randomQG(r, in)
		got := VF2(q, g, SubgraphOptions{StoreMatches: true})
		if !got.Completed {
			return false
		}
		want := BruteSubgraph(q, g)
		if got.Count != len(want) {
			t.Logf("seed %d: count %d vs %d", seed, got.Count, len(want))
			return false
		}
		SortMatches(got.Matches)
		if !reflect.DeepEqual(got.Matches, want) && got.Count > 0 {
			t.Logf("seed %d: matches differ", seed)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomQG builds a small random pattern (2-4 nodes, connected) and a
// small random graph (≤10 nodes) over 3 labels.
func randomQG(r *rand.Rand, in *graph.Interner) (*pattern.Pattern, *graph.Graph) {
	labels := []string{"A", "B", "C"}
	q := pattern.New(in)
	qn := 2 + r.Intn(3)
	for i := 0; i < qn; i++ {
		q.AddNodeNamed(labels[r.Intn(3)], nil)
	}
	// Spanning edges keep it connected; random orientation.
	for i := 1; i < qn; i++ {
		j := r.Intn(i)
		if r.Intn(2) == 0 {
			_ = q.AddEdge(pattern.Node(i), pattern.Node(j))
		} else {
			_ = q.AddEdge(pattern.Node(j), pattern.Node(i))
		}
	}
	for k := 0; k < r.Intn(3); k++ {
		i, j := r.Intn(qn), r.Intn(qn)
		if i != j {
			_ = q.AddEdge(pattern.Node(i), pattern.Node(j))
		}
	}
	g := graph.New(in)
	gn := 4 + r.Intn(7)
	for i := 0; i < gn; i++ {
		g.AddNodeNamed(labels[r.Intn(3)], graph.NoValue())
	}
	ge := r.Intn(3 * gn)
	for k := 0; k < ge; k++ {
		i, j := r.Intn(gn), r.Intn(gn)
		if i != j {
			_ = g.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return q, g
}

func TestOptVariantsAgreeWithBase(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := graph.NewInterner()
		q, g := randomQG(r, in)
		// Discover a generous schema so indices exist.
		schema := access.Discover(g, access.DiscoverOptions{MaxType1: 100, MaxType2: 100})
		idx, viols := access.Build(g, schema)
		if viols != nil {
			return false
		}
		base := VF2(q, g, SubgraphOptions{StoreMatches: true})
		opt := OptVF2(q, g, idx, SubgraphOptions{StoreMatches: true})
		SortMatches(base.Matches)
		SortMatches(opt.Matches)
		if base.Count != opt.Count || !reflect.DeepEqual(base.Matches, opt.Matches) {
			t.Logf("seed %d: vf2 %d vs optvf2 %d", seed, base.Count, opt.Count)
			return false
		}
		bs := GSim(q, g)
		os := OptGSim(q, g, idx)
		if bs.Matched != os.Matched || (bs.Matched && !reflect.DeepEqual(bs.Sim, os.Sim)) {
			t.Logf("seed %d: gsim vs optgsim differ", seed)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOptVariantsNilIndex(t *testing.T) {
	q, g, _ := triangleFixture(t)
	if res := OptVF2(q, g, nil, SubgraphOptions{}); res.Count != 1 {
		t.Fatalf("OptVF2(nil idx) count = %d", res.Count)
	}
	if res := OptGSim(q, g, nil); !res.Matched {
		t.Fatalf("OptGSim(nil idx) should match")
	}
}

func TestSearchOrderCoversAllNodes(t *testing.T) {
	// Disconnected pattern (bypassing Validate) must still be ordered.
	in := graph.NewInterner()
	q := pattern.New(in)
	q.AddNodeNamed("A", nil)
	q.AddNodeNamed("B", nil)
	u := make([][]graph.NodeID, 2)
	u[0] = []graph.NodeID{0}
	u[1] = []graph.NodeID{1, 2}
	order := searchOrder(q, u)
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	seen := map[pattern.Node]bool{}
	for _, x := range order {
		seen[x] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("order misses nodes: %v", order)
	}
}

func TestVF2EmptyPattern(t *testing.T) {
	in := graph.NewInterner()
	q := pattern.New(in)
	g := graph.New(in)
	res := VF2(q, g, SubgraphOptions{})
	if res.Count != 0 || !res.Completed {
		t.Fatalf("empty pattern: %+v", res)
	}
}
