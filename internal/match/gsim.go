// Package match implements the graph-pattern matching substrates of the
// reproduction: VF2-style subgraph isomorphism and graph simulation (the
// two semantics of §II of the paper), their index-optimized variants
// (optVF2, optgsim), and brute-force references used by property tests.
package match

import (
	"sort"

	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// SimResult is the outcome of evaluating a simulation query: the unique
// maximum match relation R ⊆ VQ × V. If any pattern node has no match,
// the relation is empty (Matched is false and Sim holds empty sets).
type SimResult struct {
	// Sim[u] lists the data nodes v with (u, v) ∈ R, indexed by pattern
	// node.
	Sim [][]graph.NodeID
	// Matched reports whether every pattern node has at least one match.
	Matched bool
	// Steps counts candidate-set element removals plus initial inserts —
	// a machine-independent work measure.
	Steps int
}

// Pairs returns |R|, the total number of matched pairs.
func (r *SimResult) Pairs() int {
	if !r.Matched {
		return 0
	}
	t := 0
	for _, s := range r.Sim {
		t += len(s)
	}
	return t
}

// Has reports whether (u, v) is in the relation.
func (r *SimResult) Has(u pattern.Node, v graph.NodeID) bool {
	if !r.Matched || int(u) >= len(r.Sim) {
		return false
	}
	for _, w := range r.Sim[u] {
		if w == v {
			return true
		}
	}
	return false
}

// GSim computes the maximum graph simulation of q in g under the paper's
// semantics: (u, v) ∈ R requires label and predicate compatibility, and
// for every pattern edge (u, u') some data edge (v, v') with (u', v') ∈ R.
// The worklist refinement is the counter-based O(|EQ|·|E|) scheme in the
// style of Henzinger, Henzinger & Kopke (FOCS 1995), the algorithm the
// paper's gsim baseline uses.
func GSim(q *pattern.Pattern, g *graph.Graph) *SimResult {
	return gsim(q, g, nil)
}

// gsim runs simulation with optional initial candidate sets (used by
// OptGSim and by bounded evaluation); initCands[u] == nil means "all
// label-compatible nodes of g".
func gsim(q *pattern.Pattern, g *graph.Graph, initCands [][]graph.NodeID) *SimResult {
	n := q.NumNodes()
	res := &SimResult{Sim: make([][]graph.NodeID, n)}

	// sim[u] as a set for O(1) membership.
	sim := make([]map[graph.NodeID]struct{}, n)
	for ui := 0; ui < n; ui++ {
		u := pattern.Node(ui)
		var source []graph.NodeID
		if initCands != nil && initCands[ui] != nil {
			source = initCands[ui]
		} else {
			source = g.NodesByLabel(q.LabelOf(u))
		}
		set := make(map[graph.NodeID]struct{})
		for _, v := range source {
			if q.MatchesNode(u, g, v) {
				set[v] = struct{}{}
				res.Steps++
			}
		}
		sim[ui] = set
	}

	// cnt[u'][v] = |out(v) ∩ sim(u')| for v that might need it. Built
	// lazily per pattern edge target.
	type edgeT struct{ u, uc int } // pattern edge (u, uc)
	var edges []edgeT
	q.Edges(func(from, to pattern.Node) bool {
		edges = append(edges, edgeT{int(from), int(to)})
		return true
	})

	// For each pattern node u', the pattern edges (u, u') entering it.
	inEdges := make([][]int, n)
	for ei, e := range edges {
		inEdges[e.uc] = append(inEdges[e.uc], ei)
	}

	// cnt[ei][v] = number of out-neighbors of v in sim(edges[ei].uc),
	// maintained for v in sim(edges[ei].u) (and any v we ever computed).
	cnt := make([]map[graph.NodeID]int, len(edges))
	for ei := range edges {
		cnt[ei] = make(map[graph.NodeID]int)
	}

	// removeQueue holds (u, v) pairs removed from sim(u) whose effect has
	// not been propagated yet.
	type rem struct {
		u int
		v graph.NodeID
	}
	var queue []rem

	remove := func(u int, v graph.NodeID) {
		if _, ok := sim[u][v]; !ok {
			return
		}
		delete(sim[u], v)
		res.Steps++
		queue = append(queue, rem{u, v})
	}

	// Initialize ALL counters against the initial candidate sets before
	// enforcing anything: interleaving initialization with removals would
	// double-subtract (a removal already excluded from a later-initialized
	// counter would be decremented again during propagation).
	for ei, e := range edges {
		for v := range sim[e.u] {
			c := 0
			for _, w := range g.Out(v) {
				if _, ok := sim[e.uc][w]; ok {
					c++
				}
			}
			cnt[ei][v] = c
		}
	}
	for ei, e := range edges {
		for v, c := range cnt[ei] {
			if c == 0 {
				remove(e.u, v)
			}
		}
	}

	// Propagate removals to fixpoint.
	for len(queue) > 0 {
		r := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// r.v left sim(r.u): every in-neighbor v of r.v loses a witness
		// for each pattern edge (u, r.u).
		for _, ei := range inEdges[r.u] {
			e := edges[ei]
			for _, v := range g.In(r.v) {
				if _, ok := sim[e.u][v]; !ok {
					continue
				}
				c, seen := cnt[ei][v]
				if !seen {
					continue // v was never a candidate for e.u
				}
				c--
				cnt[ei][v] = c
				if c <= 0 {
					remove(e.u, v)
				}
			}
		}
	}

	res.Matched = true
	for ui := 0; ui < n; ui++ {
		if len(sim[ui]) == 0 {
			res.Matched = false
			break
		}
	}
	if !res.Matched {
		for ui := range res.Sim {
			res.Sim[ui] = nil
		}
		return res
	}
	for ui := 0; ui < n; ui++ {
		out := make([]graph.NodeID, 0, len(sim[ui]))
		for v := range sim[ui] {
			out = append(out, v)
		}
		sortIDs(out)
		res.Sim[ui] = out
	}
	return res
}

func sortIDs(s []graph.NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
