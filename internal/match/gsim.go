// Package match implements the graph-pattern matching substrates of the
// reproduction: VF2-style subgraph isomorphism and graph simulation (the
// two semantics of §II of the paper), their index-optimized variants
// (optVF2, optgsim), and brute-force references used by property tests.
package match

import (
	"sort"
	"sync"

	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// SimResult is the outcome of evaluating a simulation query: the unique
// maximum match relation R ⊆ VQ × V. If any pattern node has no match,
// the relation is empty (Matched is false and Sim holds empty sets).
type SimResult struct {
	// Sim[u] lists the data nodes v with (u, v) ∈ R, indexed by pattern
	// node.
	Sim [][]graph.NodeID
	// Matched reports whether every pattern node has at least one match.
	Matched bool
	// Steps counts candidate-set element removals plus initial inserts —
	// a machine-independent work measure.
	Steps int
}

// Pairs returns |R|, the total number of matched pairs.
func (r *SimResult) Pairs() int {
	if !r.Matched {
		return 0
	}
	t := 0
	for _, s := range r.Sim {
		t += len(s)
	}
	return t
}

// Has reports whether (u, v) is in the relation.
func (r *SimResult) Has(u pattern.Node, v graph.NodeID) bool {
	if !r.Matched || int(u) >= len(r.Sim) {
		return false
	}
	for _, w := range r.Sim[u] {
		if w == v {
			return true
		}
	}
	return false
}

// GSim computes the maximum graph simulation of q in g under the paper's
// semantics: (u, v) ∈ R requires label and predicate compatibility, and
// for every pattern edge (u, u') some data edge (v, v') with (u', v') ∈ R.
// The worklist refinement is the counter-based O(|EQ|·|E|) scheme in the
// style of Henzinger, Henzinger & Kopke (FOCS 1995), the algorithm the
// paper's gsim baseline uses.
func GSim(q *pattern.Pattern, g *graph.Graph) *SimResult {
	return gsim(q, g, nil, 1)
}

// GSimParallel is GSim with the candidate-initialization and
// counter-construction phases sharded across the given number of
// goroutines. The refinement fixpoint stays serial; the relation (and
// Steps) is identical to GSim's for any worker count.
func GSimParallel(q *pattern.Pattern, g *graph.Graph, workers int) *SimResult {
	return gsim(q, g, nil, workers)
}

// minParallelCands is the per-phase work below which sharding the
// initialization is not worth the goroutine handoff.
const minParallelCands = 256

// gsim runs simulation with optional initial candidate sets (used by
// OptGSim and by bounded evaluation); initCands[u] == nil means "all
// label-compatible nodes of g". workers > 1 parallelizes the two
// initialization phases.
func gsim(q *pattern.Pattern, g *graph.Graph, initCands [][]graph.NodeID, workers int) *SimResult {
	return gsimOn(q, adjacency{g: g}, initCands, workers)
}

func gsimOn(q *pattern.Pattern, a adjacency, initCands [][]graph.NodeID, workers int) *SimResult {
	g := a.g
	n := q.NumNodes()
	res := &SimResult{Sim: make([][]graph.NodeID, n)}
	idCap := g.Cap()

	// Initial candidate sources per pattern node.
	sources := make([][]graph.NodeID, n)
	for ui := 0; ui < n; ui++ {
		if initCands != nil && initCands[ui] != nil {
			sources[ui] = initCands[ui]
		} else {
			sources[ui] = g.NodesByLabel(q.LabelOf(pattern.Node(ui)))
		}
	}

	// Phase 1: filter sources by node compatibility. Shards preserve
	// source order, so the assembled lists match the serial run.
	kept := filterCandidates(q, g, sources, workers)

	// sim[u] as dense set for O(1) membership; simList[u] keeps the
	// (deduplicated) iteration order for counter construction.
	sim := make([]*graph.DenseSet, n)
	simList := make([][]graph.NodeID, n)
	for ui := 0; ui < n; ui++ {
		set := graph.NewDenseSet(idCap)
		list := kept[ui][:0]
		for _, v := range kept[ui] {
			if set.Add(v) {
				list = append(list, v)
				res.Steps++
			}
		}
		sim[ui] = set
		simList[ui] = list
	}

	type edgeT struct{ u, uc int } // pattern edge (u, uc)
	var edges []edgeT
	q.Edges(func(from, to pattern.Node) bool {
		edges = append(edges, edgeT{int(from), int(to)})
		return true
	})

	// For each pattern node u', the pattern edges (u, u') entering it.
	inEdges := make([][]int, n)
	for ei, e := range edges {
		inEdges[e.uc] = append(inEdges[e.uc], ei)
	}

	// cnt[ei] tracks |out(v) ∩ sim(edges[ei].uc)| for v in
	// sim(edges[ei].u) — dense when the candidates are a fair share of
	// the ID space (full-graph GSim, bounded evaluation on GQ), sparse
	// when a few candidates sit in a huge graph (OptGSim), where an
	// O(|V|) row per pattern edge would dwarf the actual work.
	cnt := make([]cntRow, len(edges))
	for ei, e := range edges {
		cnt[ei] = newCntRow(idCap, len(simList[e.u]))
	}

	// Phase 2: build ALL counters against the initial candidate sets
	// before enforcing anything: interleaving initialization with removals
	// would double-subtract (a removal already excluded from a
	// later-initialized counter would be decremented again during
	// propagation). Shards write disjoint cnt slots and only read the
	// frozen sim sets, so this parallelizes cleanly.
	var initTasks []func()
	for ei := range edges {
		e := edges[ei]
		row, src, ucSet := &cnt[ei], simList[e.u], sim[e.uc]
		nc := 1
		// Sparse rows are maps, so they get a single writer; dense rows
		// shard freely (disjoint slots).
		if workers > 1 && len(src) >= minParallelCands && row.dense != nil {
			nc = workers
			if nc > len(src) {
				nc = len(src)
			}
		}
		for c := 0; c < nc; c++ {
			lo, hi := c*len(src)/nc, (c+1)*len(src)/nc
			chunk := src[lo:hi]
			initTasks = append(initTasks, func() {
				for _, v := range chunk {
					c := int32(0)
					for _, w := range a.Out(v) {
						if ucSet.Has(w) {
							c++
						}
					}
					row.set(v, c)
				}
			})
		}
	}
	runTasks(workers, initTasks)

	// removeQueue holds (u, v) pairs removed from sim(u) whose effect has
	// not been propagated yet.
	type rem struct {
		u int
		v graph.NodeID
	}
	var queue []rem

	remove := func(u int, v graph.NodeID) {
		if !sim[u].Remove(v) {
			return
		}
		res.Steps++
		queue = append(queue, rem{u, v})
	}

	for ei, e := range edges {
		for _, v := range simList[e.u] {
			if cnt[ei].isZero(v) {
				remove(e.u, v)
			}
		}
	}

	// Propagate removals to fixpoint.
	for len(queue) > 0 {
		r := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// r.v left sim(r.u): every in-neighbor v of r.v loses a witness
		// for each pattern edge (u, r.u).
		for _, ei := range inEdges[r.u] {
			e := edges[ei]
			row := &cnt[ei]
			for _, v := range a.In(r.v) {
				if !sim[e.u].Has(v) {
					continue
				}
				c, wasCand := row.dec(v)
				if !wasCand {
					continue // v was never a candidate for e.u
				}
				if c <= 0 {
					remove(e.u, v)
				}
			}
		}
	}

	res.Matched = true
	for ui := 0; ui < n; ui++ {
		if sim[ui].Len() == 0 {
			res.Matched = false
			break
		}
	}
	if !res.Matched {
		return res
	}
	for ui := 0; ui < n; ui++ {
		res.Sim[ui] = sim[ui].AppendTo(make([]graph.NodeID, 0, sim[ui].Len()))
	}
	return res
}

// cntRow is the per-pattern-edge counter store of gsim: cnt(v) =
// |out(v) ∩ sim(uc)|. Dense rows are []int32 with a +1 bias (0 = "never
// a candidate") so the zero-filled slice needs no O(|V|) fill; sparse
// rows use a map sized to the candidate list.
type cntRow struct {
	dense  []int32
	sparse map[graph.NodeID]int32
}

// newCntRow picks the representation: dense when the candidates are at
// least 1/8 of the ID space (or the space is small), sparse otherwise.
func newCntRow(idCap, candidates int) cntRow {
	if idCap <= 1<<16 || candidates*8 >= idCap {
		return cntRow{dense: make([]int32, idCap)}
	}
	return cntRow{sparse: make(map[graph.NodeID]int32, candidates)}
}

func (r *cntRow) set(v graph.NodeID, c int32) {
	if r.dense != nil {
		r.dense[v] = c + 1
	} else {
		r.sparse[v] = c
	}
}

// isZero reports whether candidate v's counter is zero.
func (r *cntRow) isZero(v graph.NodeID) bool {
	if r.dense != nil {
		return r.dense[v] == 1
	}
	return r.sparse[v] == 0
}

// dec decrements v's counter, returning the new count and whether v was
// ever a candidate of this row.
func (r *cntRow) dec(v graph.NodeID) (int32, bool) {
	if r.dense != nil {
		s := r.dense[v]
		if s == 0 {
			return 0, false
		}
		s--
		r.dense[v] = s
		return s - 1, true
	}
	c, ok := r.sparse[v]
	if !ok {
		return 0, false
	}
	c--
	r.sparse[v] = c
	return c, true
}

// filterCandidates returns, per pattern node, the source candidates that
// pass the node-compatibility test, in source order. workers > 1 shards
// large sources.
func filterCandidates(q *pattern.Pattern, g *graph.Graph, sources [][]graph.NodeID, workers int) [][]graph.NodeID {
	n := len(sources)
	kept := make([][]graph.NodeID, n)
	if workers <= 1 {
		for ui := 0; ui < n; ui++ {
			u := pattern.Node(ui)
			var list []graph.NodeID
			for _, v := range sources[ui] {
				if q.MatchesNode(u, g, v) {
					list = append(list, v)
				}
			}
			kept[ui] = list
		}
		return kept
	}
	type shard struct {
		ui   int
		src  []graph.NodeID
		keep []graph.NodeID
	}
	var shards []*shard
	perNode := make([][]*shard, n)
	for ui := 0; ui < n; ui++ {
		src := sources[ui]
		nc := 1
		if len(src) >= minParallelCands {
			nc = workers
			if nc > len(src) {
				nc = len(src)
			}
		}
		for c := 0; c < nc; c++ {
			s := &shard{ui: ui, src: src[c*len(src)/nc : (c+1)*len(src)/nc]}
			shards = append(shards, s)
			perNode[ui] = append(perNode[ui], s)
		}
	}
	tasks := make([]func(), len(shards))
	for i, s := range shards {
		s := s
		tasks[i] = func() {
			u := pattern.Node(s.ui)
			for _, v := range s.src {
				if q.MatchesNode(u, g, v) {
					s.keep = append(s.keep, v)
				}
			}
		}
	}
	runTasks(workers, tasks)
	for ui := 0; ui < n; ui++ {
		var list []graph.NodeID
		for _, s := range perNode[ui] {
			list = append(list, s.keep...)
		}
		kept[ui] = list
	}
	return kept
}

// runTasks executes the tasks on up to workers goroutines (inline when
// serial execution suffices).
func runTasks(workers int, tasks []func()) {
	if workers <= 1 || len(tasks) <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var wg sync.WaitGroup
	next := make(chan func())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				t()
			}
		}()
	}
	for _, t := range tasks {
		next <- t
	}
	close(next)
	wg.Wait()
}

func sortIDs(s []graph.NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
