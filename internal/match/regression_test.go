package match

import (
	"math/rand"
	"reflect"
	"testing"

	"boundedg/internal/graph"
)

// TestGSimCounterInitRegression pins a bug found by the property test
// (quick.Check seed -5377061460306645880): interleaving counter
// initialization with removals double-subtracted witnesses — a node
// removed while initializing an earlier pattern edge was excluded from a
// later edge's counter AND decremented again during propagation, wrongly
// shrinking the maximum simulation.
func TestGSimCounterInitRegression(t *testing.T) {
	for _, seed := range []int64{-5377061460306645880} {
		r := rand.New(rand.NewSource(seed))
		in := graph.NewInterner()
		q, g := randomQG(r, in)
		got := GSim(q, g)
		want := BruteSim(q, g)
		if got.Matched != want.Matched || (got.Matched && !reflect.DeepEqual(got.Sim, want.Sim)) {
			t.Fatalf("seed %d: got %v/%v want %v/%v", seed, got.Matched, got.Sim, want.Matched, want.Sim)
		}
	}
}
