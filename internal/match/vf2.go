package match

import (
	"sort"

	"boundedg/internal/graph"
	"boundedg/internal/pattern"
)

// SubgraphOptions bounds a subgraph-isomorphism run. The zero value means
// "enumerate everything with no budget" — fine for bounded subgraphs GQ,
// dangerous on big graphs (which is the paper's point).
type SubgraphOptions struct {
	// MaxMatches stops the search after this many matches (0 = unlimited).
	MaxMatches int
	// MaxSteps aborts the search after this many search-tree node visits
	// (0 = unlimited). An aborted run has Completed == false, mirroring
	// the paper's "could not run to completion within 40000s".
	MaxSteps int
	// StoreMatches keeps the actual mappings (up to MaxMatches); when
	// false only Count is maintained.
	StoreMatches bool
}

// SubgraphResult is the outcome of a subgraph-isomorphism run.
type SubgraphResult struct {
	// Matches holds mappings indexed by pattern node: Matches[k][u] is the
	// data node matched to pattern node u in the k-th match. Populated
	// only when SubgraphOptions.StoreMatches is set.
	Matches [][]graph.NodeID
	// Count is the number of matches found (all of Q(G) if Completed).
	Count int
	// Completed reports whether the search exhausted the space.
	Completed bool
	// Steps counts search-tree node visits.
	Steps int
}

// VF2 enumerates Q(G) under subgraph isomorphism: injective mappings h
// from pattern nodes to data nodes such that every pattern edge (u, u')
// maps to a data edge (h(u), h(u')), with label and predicate checks. It
// is the conventional baseline of the paper (their prototype used Boost's
// VF2); this is a from-scratch implementation with the usual pruning:
// connectivity-driven search order, adjacency-restricted candidates, and
// degree filters.
func VF2(q *pattern.Pattern, g *graph.Graph, opt SubgraphOptions) *SubgraphResult {
	return vf2(q, g, nil, opt)
}

// adjacency routes the matchers' edge reads either to a live Graph or to
// a frozen CSR snapshot of it (sorted adjacency, binary-search HasEdge).
// The snapshot changes neighbor iteration order — and therefore match
// enumeration order — but never the result set.
type adjacency struct {
	g  *graph.Graph
	fz *graph.Frozen
}

func (a adjacency) Out(v graph.NodeID) []graph.NodeID {
	if a.fz != nil {
		return a.fz.Out(v)
	}
	return a.g.Out(v)
}

func (a adjacency) In(v graph.NodeID) []graph.NodeID {
	if a.fz != nil {
		return a.fz.In(v)
	}
	return a.g.In(v)
}

func (a adjacency) HasEdge(from, to graph.NodeID) bool {
	if a.fz != nil {
		return a.fz.HasEdge(from, to)
	}
	return a.g.HasEdge(from, to)
}

// vf2 runs the backtracking search with optional pre-restricted candidate
// sets (cands[u] == nil means unrestricted; used by OptVF2 and bounded
// evaluation).
func vf2(q *pattern.Pattern, g *graph.Graph, cands [][]graph.NodeID, opt SubgraphOptions) *SubgraphResult {
	return vf2On(q, adjacency{g: g}, cands, opt)
}

func vf2On(q *pattern.Pattern, a adjacency, cands [][]graph.NodeID, opt SubgraphOptions) *SubgraphResult {
	g := a.g
	n := q.NumNodes()
	res := &SubgraphResult{Completed: true}
	if n == 0 {
		return res
	}

	// Candidate universe per pattern node (label + predicate filtered).
	universe := make([][]graph.NodeID, n)
	for ui := 0; ui < n; ui++ {
		u := pattern.Node(ui)
		src := g.NodesByLabel(q.LabelOf(u))
		if cands != nil && cands[ui] != nil {
			src = cands[ui]
		}
		outDeg, inDeg := len(q.Out(u)), len(q.In(u))
		for _, v := range src {
			if !q.MatchesNode(u, g, v) {
				continue
			}
			if len(a.Out(v)) < outDeg || len(a.In(v)) < inDeg {
				continue
			}
			universe[ui] = append(universe[ui], v)
		}
		if len(universe[ui]) == 0 {
			return res // some pattern node cannot match at all
		}
	}

	order := searchOrder(q, universe)

	mapped := make([]graph.NodeID, n) // pattern node -> data node
	for i := range mapped {
		mapped[i] = graph.InvalidNode
	}
	used := graph.NewDenseSet(g.Cap())

	// feasible checks edge consistency of v (candidate for u) against all
	// already-mapped neighbors of u.
	feasible := func(u pattern.Node, v graph.NodeID) bool {
		for _, uc := range q.Out(u) {
			if w := mapped[uc]; w != graph.InvalidNode && !a.HasEdge(v, w) {
				return false
			}
		}
		for _, up := range q.In(u) {
			if w := mapped[up]; w != graph.InvalidNode && !a.HasEdge(w, v) {
				return false
			}
		}
		return true
	}

	var rec func(depth int) bool // returns false to abort the whole search
	rec = func(depth int) bool {
		res.Steps++
		if opt.MaxSteps > 0 && res.Steps > opt.MaxSteps {
			res.Completed = false
			return false
		}
		if depth == n {
			res.Count++
			if opt.StoreMatches && (opt.MaxMatches == 0 || len(res.Matches) < opt.MaxMatches) {
				res.Matches = append(res.Matches, append([]graph.NodeID(nil), mapped...))
			}
			if opt.MaxMatches > 0 && res.Count >= opt.MaxMatches {
				res.Completed = false
				return false
			}
			return true
		}
		u := order[depth]

		// Restrict candidates via an already-mapped neighbor when one
		// exists: candidates must be adjacent (right direction) to its
		// image, typically a much smaller set than the universe.
		var pool []graph.NodeID
		if uc, fromMapped := mappedNeighbor(q, mapped, u); uc != -1 {
			w := mapped[uc]
			if fromMapped {
				pool = a.Out(w) // edge (uc, u): candidates among Out(w)
			} else {
				pool = a.In(w) // edge (u, uc): candidates among In(w)
			}
			for _, v := range pool {
				if !q.MatchesNode(u, g, v) {
					continue
				}
				if used.Has(v) {
					continue
				}
				if !feasible(u, v) {
					continue
				}
				mapped[u] = v
				used.Add(v)
				ok := rec(depth + 1)
				used.Remove(v)
				mapped[u] = graph.InvalidNode
				if !ok {
					return false
				}
			}
			return true
		}
		for _, v := range universe[u] {
			if used.Has(v) {
				continue
			}
			if !feasible(u, v) {
				continue
			}
			mapped[u] = v
			used.Add(v)
			ok := rec(depth + 1)
			used.Remove(v)
			mapped[u] = graph.InvalidNode
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0)
	return res
}

// mappedNeighbor returns a neighbor of u already mapped, preferring
// parents (edge into u, so candidates come from Out of the image). The
// boolean reports whether the edge runs from the mapped neighbor to u.
func mappedNeighbor(q *pattern.Pattern, mapped []graph.NodeID, u pattern.Node) (pattern.Node, bool) {
	for _, up := range q.In(u) {
		if mapped[up] != graph.InvalidNode {
			return up, true
		}
	}
	for _, uc := range q.Out(u) {
		if mapped[uc] != graph.InvalidNode {
			return uc, false
		}
	}
	return -1, false
}

// searchOrder picks a connectivity-first order: start from the node with
// the smallest candidate universe, then repeatedly take the unvisited node
// adjacent to the chosen prefix with the smallest universe; disconnected
// components are started the same way.
func searchOrder(q *pattern.Pattern, universe [][]graph.NodeID) []pattern.Node {
	n := q.NumNodes()
	order := make([]pattern.Node, 0, n)
	visited := make([]bool, n)
	frontier := make(map[pattern.Node]struct{})

	pickMin := func(from map[pattern.Node]struct{}) pattern.Node {
		best := pattern.Node(-1)
		for u := range from {
			if best == -1 || len(universe[u]) < len(universe[best]) ||
				(len(universe[u]) == len(universe[best]) && u < best) {
				best = u
			}
		}
		return best
	}

	for len(order) < n {
		var u pattern.Node
		if len(frontier) == 0 {
			// New component: cheapest unvisited node overall.
			all := make(map[pattern.Node]struct{})
			for i := 0; i < n; i++ {
				if !visited[i] {
					all[pattern.Node(i)] = struct{}{}
				}
			}
			u = pickMin(all)
		} else {
			u = pickMin(frontier)
			delete(frontier, u)
		}
		visited[u] = true
		order = append(order, u)
		for _, w := range q.Neighbors(u) {
			if !visited[w] {
				frontier[w] = struct{}{}
			}
		}
	}
	return order
}

// SortMatches orders stored matches lexicographically, for deterministic
// comparison in tests.
func SortMatches(ms [][]graph.NodeID) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
