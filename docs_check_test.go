// Documentation checks, run by the CI docs job: Go examples embedded in
// the markdown pages must be gofmt-clean, every internal package must
// carry a godoc synopsis, and relative links in docs/ and the README
// must resolve. They complement TestReadmeFlagSynopsis (cmd/boundedgd),
// which pins the README flag block to the daemon's actual flag set.
package boundedg

import (
	"go/doc"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docPages returns every markdown page the checks cover: README.md and
// docs/*.md.
func docPages(t *testing.T) []string {
	t.Helper()
	pages := []string{"README.md"}
	more, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(more) == 0 {
		t.Fatal("no docs/*.md pages found")
	}
	return append(pages, more...)
}

var fenceRE = regexp.MustCompile("(?ms)^```([a-zA-Z0-9]*)\n(.*?)^```")

// TestDocsGoExamplesGofmt extracts every ```go fence from the doc pages
// and requires it to be a gofmt fixpoint (format.Source accepts whole
// files, declaration lists and statement lists alike).
func TestDocsGoExamplesGofmt(t *testing.T) {
	for _, page := range docPages(t) {
		src, err := os.ReadFile(page)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range fenceRE.FindAllStringSubmatch(string(src), -1) {
			if m[1] != "go" {
				continue
			}
			snippet := m[2]
			formatted, err := format.Source([]byte(snippet))
			if err != nil {
				t.Errorf("%s: go example %d does not parse: %v\n%s", page, i, err, snippet)
				continue
			}
			if got := string(formatted); strings.TrimRight(got, "\n") != strings.TrimRight(snippet, "\n") {
				t.Errorf("%s: go example %d is not gofmt-clean; want:\n%s", page, i, got)
			}
		}
	}
}

// TestInternalPackageSynopses requires every internal package to open
// with a godoc package comment whose synopsis is non-empty — the `go
// doc` smoke in CI checks the same thing through the toolchain.
func TestInternalPackageSynopses(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("internal", "*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		synopsis := ""
		any := false
		for _, f := range files {
			if strings.HasSuffix(f, "_test.go") {
				continue
			}
			any = true
			af, err := parser.ParseFile(token.NewFileSet(), f, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("%s: %v", f, err)
			}
			if af.Doc != nil {
				synopsis = doc.Synopsis(af.Doc.Text())
			}
		}
		if any && synopsis == "" {
			t.Errorf("package %s has no godoc package comment", dir)
		}
	}
}

var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocLinks resolves every markdown link in the doc pages: relative
// paths must name existing files or directories, and same-page #anchors
// must match a heading. External http(s) links are left to humans (the
// checker runs offline).
func TestDocLinks(t *testing.T) {
	for _, page := range docPages(t) {
		src, err := os.ReadFile(page)
		if err != nil {
			t.Fatal(err)
		}
		// Links inside fenced code blocks are examples, not references.
		text := fenceRE.ReplaceAllString(string(src), "")
		for _, m := range linkRE.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			if path == "" {
				if !hasAnchor(string(src), frag) {
					t.Errorf("%s: anchor #%s matches no heading", page, frag)
				}
				continue
			}
			resolved := filepath.Join(filepath.Dir(page), path)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: link target %s does not exist (%s)", page, target, resolved)
			}
		}
	}
}

// hasAnchor reports whether a markdown heading slugs (GitHub-style) to
// frag.
func hasAnchor(src, frag string) bool {
	for _, line := range strings.Split(src, "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		h := strings.TrimSpace(strings.TrimLeft(line, "#"))
		var slug strings.Builder
		for _, r := range strings.ToLower(h) {
			switch {
			case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-':
				slug.WriteRune(r)
			case r == ' ':
				slug.WriteByte('-')
			}
		}
		if slug.String() == frag {
			return true
		}
	}
	return false
}
