package main

import (
	"os"
	"path/filepath"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/workload"
)

// writeFixture generates a small dataset and a query file on disk.
func writeFixture(t *testing.T) (graphPath, schemaPath, queryPath string) {
	t.Helper()
	dir := t.TempDir()
	d := workload.IMDb(0.05, 1)
	graphPath = filepath.Join(dir, "g.json")
	schemaPath = filepath.Join(dir, "a.json")
	queryPath = filepath.Join(dir, "q.pat")

	gf, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.G.WriteJSON(gf); err != nil {
		t.Fatal(err)
	}
	gf.Close()
	sf, err := os.Create(schemaPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Schema.WriteJSON(sf, d.In); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	q := `
u1: award
u2: year (>= 1990, <= 2000)
u3: movie
u4: actor
u3 -> u1, u2
u3 -> u4
`
	if err := os.WriteFile(queryPath, []byte(q), 0o644); err != nil {
		t.Fatal(err)
	}
	return graphPath, schemaPath, queryPath
}

func TestRunModes(t *testing.T) {
	g, a, q := writeFixture(t)
	for _, mode := range []string{"check", "plan", "explain", "run", "direct"} {
		if err := run(g, a, q, "subgraph", mode, 0, 3); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
	// Simulation: Q with movie->actor is not sim-bounded under the IMDb
	// schema? movie->actor means actor is movie's child, coverable via
	// movie->(actor,N)... actor's own children are absent, but coverage
	// only needs a constraint keyed on u's children. Just exercise both
	// outcomes without asserting: check mode never errors.
	if err := run(g, a, q, "simulation", "check", 0, 3); err != nil {
		t.Errorf("simulation check: %v", err)
	}
	if err := run(g, a, q, "simulation", "direct", 0, 3); err != nil {
		t.Errorf("simulation direct: %v", err)
	}
}

func TestRunInstanceExtension(t *testing.T) {
	g, _, q := writeFixture(t)
	// An empty schema: the query is unbounded; -instance must fix it.
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	f, err := os.Create(empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := access.NewSchema().WriteJSON(f, nil); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(g, empty, q, "subgraph", "run", 0, 3); err == nil {
		t.Fatalf("unbounded query without -instance should fail")
	}
	if err := run(g, empty, q, "subgraph", "run", 1_000_000, 3); err != nil {
		t.Fatalf("instance-bounded run: %v", err)
	}
	if err := run(g, empty, q, "subgraph", "run", 1, 3); err == nil {
		t.Fatalf("M = 1 cannot bound the query")
	}
}

func TestRunErrors(t *testing.T) {
	g, a, q := writeFixture(t)
	if err := run("", a, q, "subgraph", "run", 0, 1); err == nil {
		t.Error("missing -graph should fail")
	}
	if err := run(g, a, q, "nonsense", "run", 0, 1); err == nil {
		t.Error("bad semantics should fail")
	}
	if err := run(g, a, "/does/not/exist", "subgraph", "run", 0, 1); err == nil {
		t.Error("missing query file should fail")
	}
	if err := run("/does/not/exist", a, q, "subgraph", "run", 0, 1); err == nil {
		t.Error("missing graph file should fail")
	}
	if err := run(g, "/does/not/exist", q, "subgraph", "run", 0, 1); err == nil {
		t.Error("missing schema file should fail")
	}
}
