// Command qbound answers pattern queries on a graph using the
// effective-boundedness machinery of the paper: it checks whether the
// query is effectively bounded under the access schema, prints the
// worst-case-optimal query plan, and evaluates the query either through
// the plan (bounded) or directly (baseline).
//
// Usage:
//
//	qbound -graph g.json -schema a.json -query q.pat [-sem subgraph] [-mode run]
//
// Modes:
//
//	check   decide effective boundedness, print the cover diagnosis
//	explain print the plan with its worst-case cost accounting
//	plan    also print the generated query plan
//	run     plan + execute (bounded evaluation); falls back with an error
//	        if the query is unbounded (use -instance to extend)
//	direct  conventional evaluation (VF2 / gsim), for comparison
//
// With -instance M, an unbounded query is made instance-bounded by an
// M-bounded extension of the schema (§V of the paper) before running.
package main

import (
	"flag"
	"fmt"
	"os"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/graph"
	"boundedg/internal/match"
	"boundedg/internal/pattern"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "graph JSON (from datagen or WriteJSON)")
		schemaPath = flag.String("schema", "", "access schema JSON")
		queryPath  = flag.String("query", "", "pattern file in the qbound DSL")
		semName    = flag.String("sem", "subgraph", "semantics: subgraph or simulation")
		mode       = flag.String("mode", "run", "check | plan | explain | run | direct")
		instanceM  = flag.Int("instance", 0, "if > 0, extend the schema with an M-bounded extension when the query is unbounded")
		maxMatches = flag.Int("max-matches", 10, "matches to print (subgraph)")
	)
	flag.Parse()
	if err := run(*graphPath, *schemaPath, *queryPath, *semName, *mode, *instanceM, *maxMatches); err != nil {
		fmt.Fprintln(os.Stderr, "qbound:", err)
		os.Exit(1)
	}
}

func run(graphPath, schemaPath, queryPath, semName, mode string, instanceM, maxMatches int) error {
	if graphPath == "" || schemaPath == "" || queryPath == "" {
		return fmt.Errorf("-graph, -schema and -query are required")
	}
	var sem core.Semantics
	switch semName {
	case "subgraph":
		sem = core.Subgraph
	case "simulation":
		sem = core.Simulation
	default:
		return fmt.Errorf("unknown semantics %q", semName)
	}

	in := graph.NewInterner()
	gf, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	defer gf.Close()
	g, _, err := graph.ReadJSON(gf, in)
	if err != nil {
		return err
	}
	sf, err := os.Open(schemaPath)
	if err != nil {
		return err
	}
	defer sf.Close()
	schema, err := access.ReadJSON(sf, in)
	if err != nil {
		return err
	}
	qsrc, err := os.ReadFile(queryPath)
	if err != nil {
		return err
	}
	q, err := pattern.Parse(string(qsrc), in)
	if err != nil {
		return err
	}
	fmt.Printf("graph: |V|=%d |E|=%d; schema: %d constraints; query: %d nodes, %d edges; semantics: %s\n",
		g.NumNodes(), g.NumEdges(), schema.Count(), q.NumNodes(), q.NumEdges(), sem)

	if mode == "direct" {
		return runDirect(q, g, sem, maxMatches)
	}

	cov := core.EBnd(q, schema, sem)
	if cov.Bounded {
		fmt.Println("effectively bounded: YES")
	} else {
		fmt.Printf("effectively bounded: NO (uncovered nodes %v, uncovered edges %v)\n",
			names(q, cov.UncoveredNodes()), edgeNames(q, cov.UncoveredEdges()))
		if instanceM > 0 {
			ok, am := core.EEChk([]*pattern.Pattern{q}, schema, instanceM, g, sem)
			if !ok {
				return fmt.Errorf("no %d-bounded extension makes the query instance-bounded", instanceM)
			}
			fmt.Printf("instance-bounded under a %d-bounded extension (%d constraints)\n", instanceM, am.Count())
			schema = am
		} else if mode != "check" {
			return fmt.Errorf("query is not effectively bounded; retry with -instance M or -mode direct")
		}
	}
	if mode == "check" {
		return nil
	}

	plan, err := core.NewPlan(q, schema, sem)
	if err != nil {
		return err
	}
	if mode == "explain" {
		fmt.Print(plan.Explain())
		return nil
	}
	fmt.Println(plan)
	fmt.Printf("worst-case GQ nodes: %.0f\n", plan.EstGQNodes())
	if mode == "plan" {
		return nil
	}

	idx, viols := access.Build(g, schema)
	if viols != nil {
		return fmt.Errorf("graph does not satisfy the schema: %v", viols[0])
	}
	switch sem {
	case core.Subgraph:
		res, stats, err := plan.EvalSubgraph(g, idx, match.SubgraphOptions{StoreMatches: true, MaxMatches: maxMatches})
		if err != nil {
			return err
		}
		printStats(stats)
		fmt.Printf("matches: %d (showing up to %d)\n", res.Count, maxMatches)
		for _, m := range res.Matches {
			printMatch(q, g, m)
		}
	case core.Simulation:
		res, stats, err := plan.EvalSim(g, idx)
		if err != nil {
			return err
		}
		printStats(stats)
		if !res.Matched {
			fmt.Println("maximum match relation: empty")
			return nil
		}
		fmt.Printf("maximum match relation: %d pairs\n", res.Pairs())
		for ui, vs := range res.Sim {
			fmt.Printf("  %s -> %d matches\n", q.Name(pattern.Node(ui)), len(vs))
		}
	}
	return nil
}

func runDirect(q *pattern.Pattern, g *graph.Graph, sem core.Semantics, maxMatches int) error {
	switch sem {
	case core.Subgraph:
		res := match.VF2(q, g, match.SubgraphOptions{StoreMatches: true, MaxMatches: maxMatches})
		fmt.Printf("VF2 matches: %d (complete: %v, steps: %d)\n", res.Count, res.Completed, res.Steps)
		for _, m := range res.Matches {
			printMatch(q, g, m)
		}
	case core.Simulation:
		res := match.GSim(q, g)
		if !res.Matched {
			fmt.Println("gsim: empty relation")
			return nil
		}
		fmt.Printf("gsim: %d pairs\n", res.Pairs())
	}
	return nil
}

func printStats(st *core.ExecStats) {
	fmt.Printf("accessed: %d nodes + %d edges via %d index lookups; GQ: %d nodes, %d edges\n",
		st.NodesAccessed, st.EdgesAccessed, st.IndexLookups, st.GQNodes, st.GQEdges)
}

func printMatch(q *pattern.Pattern, g *graph.Graph, m []graph.NodeID) {
	fmt.Print("  {")
	for ui, v := range m {
		if ui > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s=%d", q.Name(pattern.Node(ui)), v)
		if val := g.ValueOf(v); val.Kind != graph.KindNone {
			fmt.Printf("(%s)", val)
		}
	}
	fmt.Println("}")
}

func names(q *pattern.Pattern, us []pattern.Node) []string {
	out := make([]string, len(us))
	for i, u := range us {
		out[i] = q.Name(u)
	}
	return out
}

func edgeNames(q *pattern.Pattern, es [][2]pattern.Node) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = q.Name(e[0]) + "->" + q.Name(e[1])
	}
	return out
}
