// Command datagen generates one of the synthetic evaluation datasets
// (imdb, dbpedia, webbase) and writes the graph and its access schema as
// JSON, ready for cmd/qbound. With -index it also builds and persists the
// constraint index set, so cmd/boundedgd can start without rescanning the
// graph.
//
// Usage:
//
//	datagen -dataset imdb -scale 0.5 -seed 1 -graph g.json -schema a.json
//	datagen -dataset imdb -graph g.json -schema a.json -index idx.json
package main

import (
	"flag"
	"fmt"
	"os"

	"boundedg/internal/access"
	"boundedg/internal/exp"
)

func main() {
	var (
		dataset    = flag.String("dataset", "imdb", "dataset generator: imdb, dbpedia or webbase")
		scale      = flag.Float64("scale", 1.0, "|G| scale factor")
		seed       = flag.Int64("seed", 1, "generation seed")
		graphPath  = flag.String("graph", "graph.json", "output path for the graph")
		schemaPath = flag.String("schema", "schema.json", "output path for the access schema")
		indexPath  = flag.String("index", "", "also build and persist the constraint index set to this path")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *seed, *graphPath, *schemaPath, *indexPath); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, seed int64, graphPath, schemaPath, indexPath string) error {
	d, err := exp.Gen(dataset, scale, seed)
	if err != nil {
		return err
	}
	gf, err := os.Create(graphPath)
	if err != nil {
		return err
	}
	defer gf.Close()
	if err := d.G.WriteJSON(gf); err != nil {
		return err
	}
	sf, err := os.Create(schemaPath)
	if err != nil {
		return err
	}
	defer sf.Close()
	if err := d.Schema.WriteJSON(sf, d.In); err != nil {
		return err
	}
	if indexPath != "" {
		idx, viols := access.Build(d.G, d.Schema)
		if viols != nil {
			return fmt.Errorf("generated graph violates its schema: %v", viols[0])
		}
		xf, err := os.Create(indexPath)
		if err != nil {
			return err
		}
		defer xf.Close()
		if err := idx.WriteJSON(xf, d.In); err != nil {
			return err
		}
	}
	fmt.Printf("%s: |V|=%d |E|=%d labels=%d constraints=%d -> %s, %s\n",
		d.Name, d.G.NumNodes(), d.G.NumEdges(), d.In.Len(), d.Schema.Count(), graphPath, schemaPath)
	if indexPath != "" {
		fmt.Printf("index set -> %s\n", indexPath)
	}
	return nil
}
