package main

import (
	"os"
	"path/filepath"
	"testing"

	"boundedg/internal/access"
	"boundedg/internal/graph"
)

func TestRunWritesLoadableFiles(t *testing.T) {
	dir := t.TempDir()
	g := filepath.Join(dir, "g.json")
	a := filepath.Join(dir, "a.json")
	x := filepath.Join(dir, "idx.json")
	if err := run("webbase", 0.05, 3, g, a, x); err != nil {
		t.Fatalf("run: %v", err)
	}
	in := graph.NewInterner()
	gf, err := os.Open(g)
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	gg, _, err := graph.ReadJSON(gf, in)
	if err != nil {
		t.Fatalf("graph unreadable: %v", err)
	}
	af, err := os.Open(a)
	if err != nil {
		t.Fatal(err)
	}
	defer af.Close()
	schema, err := access.ReadJSON(af, in)
	if err != nil {
		t.Fatalf("schema unreadable: %v", err)
	}
	// The written pair is consistent: the graph satisfies its schema.
	if viols := access.Validate(gg, schema); viols != nil {
		t.Fatalf("generated graph violates generated schema: %v", viols[0])
	}
	// The persisted index set loads and matches a fresh build.
	xf, err := os.Open(x)
	if err != nil {
		t.Fatal(err)
	}
	defer xf.Close()
	idx, err := access.ReadIndexSet(xf, in)
	if err != nil {
		t.Fatalf("index set unreadable: %v", err)
	}
	if idx.Schema().Count() != schema.Count() {
		t.Fatalf("index schema has %d constraints, want %d", idx.Schema().Count(), schema.Count())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("nope", 1, 1, filepath.Join(dir, "g"), filepath.Join(dir, "a"), ""); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("imdb", 0.01, 1, "/no/such/dir/g.json", filepath.Join(dir, "a"), ""); err == nil {
		t.Error("unwritable graph path accepted")
	}
	if err := run("imdb", 0.01, 1, filepath.Join(dir, "g.json"), "/no/such/dir/a.json", ""); err == nil {
		t.Error("unwritable schema path accepted")
	}
	if err := run("imdb", 0.01, 1, filepath.Join(dir, "g.json"), filepath.Join(dir, "a.json"), "/no/such/dir/idx.json"); err == nil {
		t.Error("unwritable index path accepted")
	}
}
