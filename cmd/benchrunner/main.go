// Command benchrunner regenerates the paper's evaluation tables and
// figures (§VII) on the synthetic datasets. Each -exp value corresponds to
// one figure/table; "all" runs everything. See EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
//
// Usage:
//
//	benchrunner -exp all
//	benchrunner -exp fig5-varyg -dataset webbase -n 20
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"boundedg/internal/core"
	"boundedg/internal/exp"
)

func main() {
	var (
		expName  = flag.String("exp", "all", "experiment: bounded-pct, fig5-varyg, fig5-varyq, fig5-varya, fig5-accessed, fig6, exp3, engine, all")
		dataset  = flag.String("dataset", "", "dataset for fig5 experiments: imdb, dbpedia, webbase (empty = all)")
		n        = flag.Int("n", 0, "queries per load (default 100)")
		seed     = flag.Int64("seed", 0, "generation seed (default 1)")
		budget   = flag.Int("budget", 0, "step budget for VF2/optVF2 baselines")
		matchCap = flag.Int("match-cap", 0, "match-count cap for subgraph algorithms")
		scales   = flag.String("scales", "", "comma-separated |G| scale factors for fig5-varyg (may exceed 1.0)")
		workers  = flag.Int("workers", 0, "parallel execution: shard bounded plans and size the engine pool (0/1 = serial)")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()
	outCSV = *csvDir
	opt := exp.Options{NumQueries: *n, Seed: *seed, BaselineSteps: *budget, MatchLimit: *matchCap, Workers: *workers}
	if *scales != "" {
		for _, s := range strings.Split(*scales, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner: bad -scales:", err)
				os.Exit(1)
			}
			opt.Scales = append(opt.Scales, v)
		}
	}
	if err := run(*expName, *dataset, opt); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

// outCSV, when non-empty, is a directory that receives one CSV file per
// emitted table (for plotting).
var outCSV string

// emit prints the table and optionally writes it as CSV.
func emit(tab *exp.Table) error {
	tab.Render(os.Stdout)
	if outCSV == "" {
		return nil
	}
	if err := os.MkdirAll(outCSV, 0o755); err != nil {
		return err
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '-'
		}
	}, tab.Title)
	f, err := os.Create(filepath.Join(outCSV, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.WriteCSV(f)
}

func run(expName, dataset string, opt exp.Options) error {
	datasets := exp.DatasetNames()
	if dataset != "" {
		datasets = []string{dataset}
	}
	names := strings.Split(expName, ",")
	if expName == "all" {
		names = []string{"bounded-pct", "fig5-varyg", "fig5-varyq", "fig5-varya", "fig5-accessed", "fig6", "exp3", "ablation", "engine"}
	}
	for _, name := range names {
		switch strings.TrimSpace(name) {
		case "bounded-pct":
			tab, err := exp.BoundedPct(opt)
			if err != nil {
				return err
			}
			if err := emit(tab); err != nil {
				return err
			}
		case "fig5-varyg":
			for _, ds := range datasets {
				o := opt
				o.Dataset = ds
				tab, err := exp.Fig5VaryG(o)
				if err != nil {
					return err
				}
				if err := emit(tab); err != nil {
					return err
				}
			}
		case "fig5-varyq":
			for _, ds := range datasets {
				o := opt
				o.Dataset = ds
				tab, err := exp.Fig5VaryQ(o)
				if err != nil {
					return err
				}
				if err := emit(tab); err != nil {
					return err
				}
			}
		case "fig5-varya":
			for _, ds := range datasets {
				o := opt
				o.Dataset = ds
				tab, err := exp.Fig5VaryA(o)
				if err != nil {
					return err
				}
				if err := emit(tab); err != nil {
					return err
				}
			}
		case "fig5-accessed":
			for _, ds := range datasets {
				o := opt
				o.Dataset = ds
				tab, err := exp.Fig5Accessed(o)
				if err != nil {
					return err
				}
				if err := emit(tab); err != nil {
					return err
				}
			}
		case "fig6":
			for _, sem := range []core.Semantics{core.Subgraph, core.Simulation} {
				tab, err := exp.Fig6(opt, sem)
				if err != nil {
					return err
				}
				if err := emit(tab); err != nil {
					return err
				}
			}
		case "exp3":
			tab, err := exp.Exp3(opt)
			if err != nil {
				return err
			}
			if err := emit(tab); err != nil {
				return err
			}
		case "ablation":
			tab, err := exp.Ablation(opt)
			if err != nil {
				return err
			}
			if err := emit(tab); err != nil {
				return err
			}
		case "engine":
			for _, ds := range datasets {
				o := opt
				o.Dataset = ds
				tab, err := exp.EngineThroughput(o)
				if err != nil {
					return err
				}
				if err := emit(tab); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	return nil
}
