package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"boundedg/internal/exp"
)

// tinyOpt keeps the smoke run fast.
func tinyOpt() exp.Options {
	return exp.Options{
		NumQueries:    3,
		Seed:          2,
		BaselineSteps: 20_000,
		MatchLimit:    500,
		Scales:        []float64{0.1},
	}
}

func TestRunSingleExperiments(t *testing.T) {
	for _, name := range []string{"bounded-pct", "fig6", "exp3"} {
		if err := run(name, "", tinyOpt()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for _, name := range []string{"fig5-varyg", "fig5-varya", "fig5-accessed", "ablation"} {
		if err := run(name, "imdb", tinyOpt()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunCommaSeparated(t *testing.T) {
	if err := run("exp3,bounded-pct", "", tinyOpt()); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nonsense", "", tinyOpt()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestCSVOutput(t *testing.T) {
	dir := t.TempDir()
	outCSV = dir
	defer func() { outCSV = "" }()
	if err := run("exp3", "", tinyOpt()); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("want 1 csv file, got %d", len(entries))
	}
	b, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "EBChk") {
		t.Fatalf("csv content unexpected: %s", b)
	}
}
