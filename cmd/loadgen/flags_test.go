package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

// flagSynopsis renders the canonical -h flag listing (PrintDefaults on
// the FlagSet registerFlags populates) — the text the README embeds.
func flagSynopsis() string {
	var opt options
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	registerFlags(fs, &opt)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.PrintDefaults()
	return buf.String()
}

// TestReadmeFlagSynopsis pins the README's loadgen flags block to the
// actual flag set, the same contract cmd/boundedgd enforces for its own
// block: the fenced code between the markers must be byte-identical to
// `loadgen -h` output (minus the Usage line). On failure the message
// carries the expected block — paste it over the stale one.
func TestReadmeFlagSynopsis(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	const begin = "<!-- loadgen-flags:begin -->"
	const end = "<!-- loadgen-flags:end -->"
	text := string(readme)
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md lacks the %s / %s markers around the flag synopsis", begin, end)
	}
	block := text[i+len(begin) : j]
	open := strings.Index(block, "```text\n")
	if open < 0 {
		t.Fatalf("no ```text fence between the flag-synopsis markers")
	}
	block = block[open+len("```text\n"):]
	close := strings.LastIndex(block, "```")
	if close < 0 {
		t.Fatalf("unterminated flag-synopsis fence in README.md")
	}
	got := block[:close]
	if want := flagSynopsis(); got != want {
		t.Errorf("README flag synopsis is stale; regenerate the block between the markers to:\n%s", want)
	}
}
