// Command loadgen drives a running boundedgd with a mixed read/write
// HTTP workload and reports per-op-class latency histograms (p50/p95/p99
// and max), throughput, and end-to-end ordering checks. Workers are
// closed-loop by default — each issues its next request only after the
// previous response lands — and -rate switches to open-loop pacing.
//
// The generator rebuilds the daemon's dataset from the same
// (-dataset, -scale, -seed) triple, so start both sides with matching
// values:
//
//	boundedgd -dataset imdb -scale 0.5 -mutable &
//	loadgen -addr localhost:8080 -dataset imdb -scale 0.5 -duration 30s
//
// Reads are generated bounded pattern queries; writes are add-edge
// deltas on zipf- or uniform-selected live nodes, each followed by its
// compensating delete so the graph orbits its initial state. -sweep runs
// the standard {read-heavy, write-heavy} x {uniform, zipf} grid plus a
// read-mostly-with-updates scenario that reports the daemon's cache hit
// and revalidation rates, and is what produces the committed
// BENCH_loadgen.json.
//
// -target-follower points reads at a -follow replica while writes keep
// going to -addr, and the report (and the extra follower-reads sweep
// scenario) gains the follower's replication lag over the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"boundedg/internal/loadgen"
)

type options struct {
	addr     string
	follower string
	dataset  string
	scale    float64
	seed     int64

	workers  int
	rate     float64
	readPct  float64
	zipf     float64
	warmup   time.Duration
	duration time.Duration
	queries  int
	timeout  time.Duration

	subscribers int

	sweep bool
	out   string
}

// registerFlags binds every loadgen flag onto fs. It is the single
// source of truth for the flag synopsis: the README flags block must
// match fs.PrintDefaults output (enforced by TestReadmeFlagSynopsis).
func registerFlags(fs *flag.FlagSet, opt *options) {
	fs.StringVar(&opt.addr, "addr", "localhost:8080", "boundedgd address (host:port or URL)")
	fs.StringVar(&opt.follower, "target-follower", "", "read-only follower address: reads go there while writes go to -addr, and the report gains the follower's replication lag (-sweep appends the follower-reads scenario)")
	fs.StringVar(&opt.dataset, "dataset", "imdb", "dataset the daemon was started with: imdb, dbpedia or webbase")
	fs.Float64Var(&opt.scale, "scale", 1.0, "daemon's -scale (must match for live node IDs to line up)")
	fs.Int64Var(&opt.seed, "seed", 1, "daemon's -seed (must match)")
	fs.IntVar(&opt.workers, "workers", 8, "concurrent workers")
	fs.Float64Var(&opt.rate, "rate", 0, "target requests/sec across the pool (0 = closed loop)")
	fs.Float64Var(&opt.readPct, "read-pct", 0.9, "fraction of ops that are queries, in [0,1]")
	fs.Float64Var(&opt.zipf, "zipf", 0, "zipf s parameter for update node selection (> 1; 0 = uniform)")
	fs.DurationVar(&opt.warmup, "warmup", time.Second, "unrecorded warmup before measurement")
	fs.DurationVar(&opt.duration, "duration", 10*time.Second, "measured window")
	fs.IntVar(&opt.queries, "queries", 16, "distinct generated query patterns cycled by readers")
	fs.DurationVar(&opt.timeout, "timeout", 30*time.Second, "per-request HTTP timeout")
	fs.IntVar(&opt.subscribers, "subscribers", 0, "continuous-query subscriptions held open for the run, each folding its event stream and checked against /query after the load stops")
	fs.BoolVar(&opt.sweep, "sweep", false, "run the {read-heavy, write-heavy} x {uniform, zipf} grid plus the read-mostly cache scenario (ignores -read-pct/-zipf)")
	fs.StringVar(&opt.out, "out", "", "write the JSON report here ('' = stdout; -sweep default BENCH_loadgen.json)")
}

func (opt *options) config() loadgen.Config {
	return loadgen.Config{
		Addr:         opt.addr,
		FollowerAddr: opt.follower,
		Dataset:      opt.dataset,
		Scale:        opt.scale,
		Seed:         opt.seed,
		Workers:      opt.workers,
		Rate:         opt.rate,
		ReadPct:      opt.readPct,
		ZipfS:        opt.zipf,
		Warmup:       opt.warmup,
		Duration:     opt.duration,
		Queries:      opt.queries,
		Timeout:      opt.timeout,
		Subscribers:  opt.subscribers,
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var opt options
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	registerFlags(fs, &opt)
	_ = fs.Parse(os.Args[1:])

	var doc any
	if opt.sweep {
		if opt.out == "" {
			opt.out = "BENCH_loadgen.json"
		}
		sd, err := loadgen.Sweep(opt.config())
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range sd.Runs {
			logRun(r)
		}
		doc = sd
	} else {
		rep, err := loadgen.Run(opt.config())
		if err != nil {
			log.Fatal(err)
		}
		logRun(rep)
		doc = rep
	}

	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	raw = append(raw, '\n')
	if opt.out == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(opt.out, raw, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", opt.out)
}

func logRun(r *loadgen.Report) {
	name := r.Name
	if name == "" {
		name = "run"
	}
	lag := ""
	if r.Replication != nil {
		lag = fmt.Sprintf("  lag max/mean %d/%.1f catchup %.0fms", r.Replication.MaxLag, r.Replication.MeanLag, r.Replication.CatchupMS)
	}
	if s := r.Subscriptions; s != nil {
		lag += fmt.Sprintf("  subs %d: %.0f ev/s (%d diff, %d resync)  converge %.0fms, %d mismatch",
			s.Subscribers, s.EventsPerSec, s.Diffs, s.Resyncs, s.ConvergeMS, s.Mismatches)
	}
	log.Printf("%s: %.0f ops/s  read p50/p99 %s/%s (%d ops, %d err)  write p50/p99 %s/%s (%d ops, %d rej, %d err)  gsn %d->%d%s",
		name, r.OpsPerSec,
		ns(r.Read.Latency.P50Ns), ns(r.Read.Latency.P99Ns), r.Read.Ops, r.Read.Errors,
		ns(r.Write.Latency.P50Ns), ns(r.Write.Latency.P99Ns), r.Write.Ops, r.Write.Rejects, r.Write.Errors,
		r.GSNStart, r.GSNEnd, lag)
}

func ns(v int64) string { return fmt.Sprint(time.Duration(v).Round(time.Microsecond)) }
