// Command boundedgd is the bounded-query daemon: it loads a graph and its
// access-constraint indices once, then serves pattern queries over
// HTTP/JSON through the concurrent runtime engine. Because bounded
// evaluation makes per-query cost independent of |G|, one daemon instance
// serves many concurrent clients against a big graph; per-request
// deadlines and client disconnects cancel evaluation in flight, and an
// LRU result cache absorbs repeated queries.
//
// Three ways to get a graph + index set:
//
//	boundedgd -dataset imdb -scale 0.5          # generate a workload dataset
//	boundedgd -graph g.json -schema a.json      # load graph, build indices
//	boundedgd -graph g.json -index idx.json     # load graph + persisted indices
//
// The built index set can be persisted for faster restarts:
//
//	boundedgd -graph g.json -schema a.json -write-index idx.json
//
// API:
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/query -d '{
//	  "pattern": "u1: award\nu2: year (>= 2011, <= 2013)\nu3: movie\nu3 -> u1, u2",
//	  "sem": "subgraph", "limit": 10, "timeout_ms": 500
//	}'
//
// With -mutable the daemon is a read/write store: POST /update applies a
// graph delta (add/remove nodes and edges) through the epoch-versioned
// snapshot store; each accepted update publishes a new epoch that
// subsequent queries see, while in-flight queries keep the epoch they
// started under. Updates that would break an access constraint are
// rejected with 422 and leave the graph untouched:
//
//	curl -s -X POST localhost:8080/update -d '{
//	  "add_nodes": [{"label": "movie"}],
//	  "add_edges": [[-1, 17]]
//	}'
//
// SIGINT/SIGTERM drain in-flight requests and updates (up to -drain),
// then bar further writes before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/exp"
	"boundedg/internal/graph"
	"boundedg/internal/runtime"
	"boundedg/internal/server"
	"boundedg/internal/store"
)

type options struct {
	addr    string
	dataset string
	scale   float64
	seed    int64
	graph   string
	schema  string
	index   string

	writeIndex string

	workers  int
	cache    int
	timeout  time.Duration
	drain    time.Duration
	limit    int
	maxLimit int
	maxSteps int
	mutable  bool
}

func main() {
	var opt options
	flag.StringVar(&opt.addr, "addr", ":8080", "listen address")
	flag.StringVar(&opt.dataset, "dataset", "", "generate a workload dataset: imdb, dbpedia or webbase (instead of -graph)")
	flag.Float64Var(&opt.scale, "scale", 1.0, "|G| scale factor for -dataset")
	flag.Int64Var(&opt.seed, "seed", 1, "generation seed for -dataset")
	flag.StringVar(&opt.graph, "graph", "", "graph JSON (from datagen or graph.WriteJSON)")
	flag.StringVar(&opt.schema, "schema", "", "access schema JSON; constraint indices are built at startup")
	flag.StringVar(&opt.index, "index", "", "persisted index set JSON (from -write-index or datagen -index); replaces -schema")
	flag.StringVar(&opt.writeIndex, "write-index", "", "persist the index set to this path after startup")
	flag.IntVar(&opt.workers, "workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&opt.cache, "cache", 512, "result cache entries (negative disables)")
	flag.DurationVar(&opt.timeout, "timeout", 5*time.Second, "per-query evaluation deadline (0 or negative disables)")
	flag.DurationVar(&opt.drain, "drain", 10*time.Second, "graceful-shutdown drain budget")
	flag.IntVar(&opt.limit, "limit", 100, "default match limit per query")
	flag.IntVar(&opt.maxLimit, "max-limit", 10000, "hard cap on per-request match limits")
	flag.IntVar(&opt.maxSteps, "max-steps", 0, "VF2 search-step budget per query (0 = server default, negative = unlimited)")
	flag.BoolVar(&opt.mutable, "mutable", false, "enable POST /update (live graph updates through epoch snapshots)")
	flag.Parse()
	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "boundedgd:", err)
		os.Exit(1)
	}
}

// load resolves the three startup shapes into a graph, its interner and a
// ready index set.
func load(opt options) (*graph.Graph, *graph.Interner, *access.IndexSet, error) {
	switch {
	case opt.dataset != "":
		d, err := exp.Gen(opt.dataset, opt.scale, opt.seed)
		if err != nil {
			return nil, nil, nil, err
		}
		idx, viols := access.Build(d.G, d.Schema)
		if viols != nil {
			return nil, nil, nil, fmt.Errorf("generated graph violates its schema: %v", viols[0])
		}
		return d.G, d.In, idx, nil
	case opt.graph == "":
		return nil, nil, nil, fmt.Errorf("need -dataset, or -graph with -schema or -index")
	}

	in := graph.NewInterner()
	gf, err := os.Open(opt.graph)
	if err != nil {
		return nil, nil, nil, err
	}
	defer gf.Close()
	g, _, err := graph.ReadJSON(gf, in)
	if err != nil {
		return nil, nil, nil, err
	}

	switch {
	case opt.index != "":
		xf, err := os.Open(opt.index)
		if err != nil {
			return nil, nil, nil, err
		}
		defer xf.Close()
		// A persisted index set stores node IDs of the graph it was built
		// from, so -index is only valid next to that exact -graph file.
		idx, err := access.ReadIndexSet(xf, in)
		if err != nil {
			return nil, nil, nil, err
		}
		return g, in, idx, nil
	case opt.schema != "":
		sf, err := os.Open(opt.schema)
		if err != nil {
			return nil, nil, nil, err
		}
		defer sf.Close()
		schema, err := access.ReadJSON(sf, in)
		if err != nil {
			return nil, nil, nil, err
		}
		idx, viols := access.Build(g, schema)
		if viols != nil {
			return nil, nil, nil, fmt.Errorf("graph does not satisfy the schema: %v", viols[0])
		}
		return g, in, idx, nil
	}
	return nil, nil, nil, fmt.Errorf("-graph needs -schema or -index")
}

func run(opt options) error {
	started := time.Now()
	g, in, idx, err := load(opt)
	if err != nil {
		return err
	}
	if opt.writeIndex != "" {
		xf, err := os.Create(opt.writeIndex)
		if err != nil {
			return err
		}
		err = idx.WriteJSON(xf, in)
		if cerr := xf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		log.Printf("index set persisted to %s", opt.writeIndex)
	}

	st := store.New(g, idx)
	eng, err := runtime.NewFromStore(st, runtime.Config{Workers: opt.workers})
	if err != nil {
		return err
	}
	defer eng.Close()
	if opt.timeout == 0 {
		// The operator said "no deadline"; server.Config treats zero as
		// "unset, use the library default", so translate explicitly.
		opt.timeout = -1
	}
	srv := server.New(eng, in, server.Config{
		DefaultLimit:  opt.limit,
		MaxLimit:      opt.maxLimit,
		Timeout:       opt.timeout,
		CacheSize:     opt.cache,
		MaxSteps:      opt.maxSteps,
		EnableUpdates: opt.mutable,
	})

	l, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	mode := "read-only"
	if opt.mutable {
		mode = "mutable"
	}
	log.Printf("serving |V|=%d |E|=%d, %d constraints on %s, %s (startup %s)",
		g.NumNodes(), g.NumEdges(), idx.Schema().Count(), l.Addr(), mode, time.Since(started).Round(time.Millisecond))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining (up to %s)", opt.drain)
		sctx, cancel := context.WithTimeout(context.Background(), opt.drain)
		defer cancel()
		// Shutdown drains in-flight requests — updates included, since
		// each POST /update runs synchronously inside its handler. Only
		// then is the store closed, so no accepted update is lost.
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		<-errc // Serve has returned http.ErrServerClosed
		st.Close()
		if opt.mutable {
			us := st.Stats()
			log.Printf("updates drained: epoch %d, %d applied, %d rejected (%d violations)",
				us.Epoch, us.Applied, us.RejectedViolation+us.RejectedError, us.RejectedViolation)
		}
		log.Printf("drained; closing engine")
		return nil
	}
}
