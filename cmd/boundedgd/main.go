// Command boundedgd is the bounded-query daemon: it loads a graph and its
// access-constraint indices once, then serves pattern queries over
// HTTP/JSON through the concurrent runtime engine. Because bounded
// evaluation makes per-query cost independent of |G|, one daemon instance
// serves many concurrent clients against a big graph; per-request
// deadlines and client disconnects cancel evaluation in flight, and an
// LRU result cache absorbs repeated queries.
//
// Three ways to get a graph + index set:
//
//	boundedgd -dataset imdb -scale 0.5          # generate a workload dataset
//	boundedgd -graph g.json -schema a.json      # load graph, build indices
//	boundedgd -graph g.json -index idx.json     # load graph + persisted indices
//
// The built index set can be persisted for faster restarts:
//
//	boundedgd -graph g.json -schema a.json -write-index idx.json
//
// API:
//
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/query -d '{
//	  "pattern": "u1: award\nu2: year (>= 2011, <= 2013)\nu3: movie\nu3 -> u1, u2",
//	  "sem": "subgraph", "limit": 10, "timeout_ms": 500
//	}'
//
// With -mutable the daemon is a read/write store: POST /update applies a
// graph delta (add/remove nodes and edges) through the epoch-versioned
// snapshot store; each accepted update publishes a new epoch that
// subsequent queries see, while in-flight queries keep the epoch they
// started under. Concurrently posted updates group-commit into one epoch.
// Updates that would break an access constraint are rejected with 422 and
// leave the graph untouched:
//
//	curl -s -X POST localhost:8080/update -d '{
//	  "add_nodes": [{"label": "movie"}],
//	  "add_edges": [[-1, 17]]
//	}'
//
// With -wal DIR accepted updates also survive restarts: every update is
// appended to a write-ahead log in DIR before its epoch publishes (one
// fsync per group commit under -fsync, the default), and -checkpoint
// periodically rewrites the snapshot and rotates the log. On startup, if
// DIR already holds state the graph-source flags are ignored and the
// daemon recovers: it loads the checkpoint snapshot, replays the log
// tail, and truncates a torn or corrupt final record with a log line.
//
//	boundedgd -dataset imdb -mutable -wal /var/lib/boundedg   # first boot seeds DIR
//	boundedgd -mutable -wal /var/lib/boundedg                 # later boots recover
//
// SIGINT/SIGTERM drain in-flight requests and updates (up to -drain),
// bar further writes, and take a final checkpoint so the next start
// replays nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/exp"
	"boundedg/internal/graph"
	"boundedg/internal/replica"
	"boundedg/internal/runtime"
	"boundedg/internal/server"
	"boundedg/internal/shard"
	"boundedg/internal/store"
	"boundedg/internal/wal"
)

type options struct {
	addr    string
	dataset string
	scale   float64
	seed    int64
	graph   string
	schema  string
	index   string

	writeIndex string

	workers  int
	cache    int
	timeout  time.Duration
	drain    time.Duration
	limit    int
	maxLimit int
	maxSteps int
	mutable  bool

	wal        string
	fsync      bool
	checkpoint time.Duration

	shards int

	maxSubs int

	follow string
}

// registerFlags binds every boundedgd flag onto fs. It is the single
// source of truth for the flag synopsis: the README flags block must
// match fs.PrintDefaults output (enforced by TestReadmeFlagSynopsis).
func registerFlags(fs *flag.FlagSet, opt *options) {
	fs.StringVar(&opt.addr, "addr", ":8080", "listen address")
	fs.StringVar(&opt.dataset, "dataset", "", "generate a workload dataset: imdb, dbpedia or webbase (instead of -graph)")
	fs.Float64Var(&opt.scale, "scale", 1.0, "|G| scale factor for -dataset")
	fs.Int64Var(&opt.seed, "seed", 1, "generation seed for -dataset")
	fs.StringVar(&opt.graph, "graph", "", "graph JSON (from datagen or graph.WriteJSON)")
	fs.StringVar(&opt.schema, "schema", "", "access schema JSON; constraint indices are built at startup")
	fs.StringVar(&opt.index, "index", "", "persisted index set JSON (from -write-index or datagen -index); replaces -schema")
	fs.StringVar(&opt.writeIndex, "write-index", "", "persist the index set to this path after startup")
	fs.IntVar(&opt.workers, "workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
	fs.IntVar(&opt.cache, "cache", 512, "result cache entries (negative disables)")
	fs.DurationVar(&opt.timeout, "timeout", 5*time.Second, "per-query evaluation deadline (0 or negative disables)")
	fs.DurationVar(&opt.drain, "drain", 10*time.Second, "graceful-shutdown drain budget")
	fs.IntVar(&opt.limit, "limit", 100, "default match limit per query")
	fs.IntVar(&opt.maxLimit, "max-limit", 10000, "hard cap on per-request match limits")
	fs.IntVar(&opt.maxSteps, "max-steps", 0, "VF2 search-step budget per query (0 = server default, negative = unlimited)")
	fs.BoolVar(&opt.mutable, "mutable", false, "enable POST /update (live graph updates through epoch snapshots)")
	fs.IntVar(&opt.shards, "shards", 1, "partition the store into N shards (node-hash partition; queries scatter/gather over per-shard snapshots, each shard keeps its own WAL under -wal)")
	fs.StringVar(&opt.wal, "wal", "", "write-ahead-log directory for durable updates (requires -mutable); recovers from it when it holds state")
	fs.BoolVar(&opt.fsync, "fsync", true, "fsync the WAL once per group commit (false trades host-crash durability for latency)")
	fs.DurationVar(&opt.checkpoint, "checkpoint", 5*time.Minute, "WAL checkpoint interval: rewrite the snapshot and rotate the log (0 disables; shutdown always checkpoints)")
	fs.IntVar(&opt.maxSubs, "max-subs", 64, "concurrent continuous-query subscriptions (POST /subscribe; 0 disables)")
	fs.StringVar(&opt.follow, "follow", "", "run as a read-only follower of this primary URL: bootstrap from its checkpoint, then stream and replay its WAL (replaces the graph-source flags)")
}

func main() {
	var opt options
	registerFlags(flag.CommandLine, &opt)
	flag.Parse()
	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "boundedgd:", err)
		os.Exit(1)
	}
}

// load resolves the three startup shapes into a graph, its interner and a
// ready index set.
func load(opt options) (*graph.Graph, *graph.Interner, *access.IndexSet, error) {
	switch {
	case opt.dataset != "":
		d, err := exp.Gen(opt.dataset, opt.scale, opt.seed)
		if err != nil {
			return nil, nil, nil, err
		}
		idx, viols := access.Build(d.G, d.Schema)
		if viols != nil {
			return nil, nil, nil, fmt.Errorf("generated graph violates its schema: %v", viols[0])
		}
		return d.G, d.In, idx, nil
	case opt.graph == "":
		return nil, nil, nil, fmt.Errorf("need -dataset, or -graph with -schema or -index")
	}

	in := graph.NewInterner()
	gf, err := os.Open(opt.graph)
	if err != nil {
		return nil, nil, nil, err
	}
	defer gf.Close()
	g, _, err := graph.ReadJSON(gf, in)
	if err != nil {
		return nil, nil, nil, err
	}

	switch {
	case opt.index != "":
		xf, err := os.Open(opt.index)
		if err != nil {
			return nil, nil, nil, err
		}
		defer xf.Close()
		// A persisted index set stores node IDs of the graph it was built
		// from, so -index is only valid next to that exact -graph file.
		idx, err := access.ReadIndexSet(xf, in)
		if err != nil {
			return nil, nil, nil, err
		}
		return g, in, idx, nil
	case opt.schema != "":
		sf, err := os.Open(opt.schema)
		if err != nil {
			return nil, nil, nil, err
		}
		defer sf.Close()
		schema, err := access.ReadJSON(sf, in)
		if err != nil {
			return nil, nil, nil, err
		}
		idx, viols := access.Build(g, schema)
		if viols != nil {
			return nil, nil, nil, fmt.Errorf("graph does not satisfy the schema: %v", viols[0])
		}
		return g, in, idx, nil
	}
	return nil, nil, nil, fmt.Errorf("-graph needs -schema or -index")
}

// loadOrRecover resolves the startup state: when -wal names a directory
// that already holds state, the daemon recovers from it (checkpoint
// snapshot + log tail) and the graph-source flags are ignored; otherwise
// the usual load path runs and, with -wal, seeds the directory with an
// initial checkpoint.
func loadOrRecover(opt options) (*graph.Graph, *graph.Interner, *access.IndexSet, *wal.Dir, uint64, error) {
	if opt.wal != "" && wal.HasState(opt.wal) {
		in := graph.NewInterner()
		wd, err := wal.OpenDir(opt.wal, in)
		if err != nil {
			return nil, nil, nil, nil, 0, err
		}
		g, idx, info, err := wd.Recover()
		if err != nil {
			return nil, nil, nil, nil, 0, err
		}
		if info.Truncated > 0 {
			log.Printf("wal: truncated %d-byte torn/corrupt tail (%s); resuming from the last durable record", info.Truncated, info.TruncateReason)
		}
		log.Printf("wal: recovered from %s: checkpoint epoch %d + %d replayed records -> epoch %d", opt.wal, info.CheckpointEpoch, info.Records, info.Epoch)
		if opt.dataset != "" || opt.graph != "" {
			log.Printf("wal: %s already holds state; -dataset/-graph/-schema/-index ignored", opt.wal)
		}
		return g, in, idx, wd, info.Epoch, nil
	}
	g, in, idx, err := load(opt)
	if err != nil {
		return nil, nil, nil, nil, 0, err
	}
	if opt.wal == "" {
		return g, in, idx, nil, 0, nil
	}
	wd, err := wal.OpenDir(opt.wal, in)
	if err != nil {
		return nil, nil, nil, nil, 0, err
	}
	if err := wd.Init(0, g, idx); err != nil {
		return nil, nil, nil, nil, 0, err
	}
	log.Printf("wal: initialized %s (checkpoint at epoch 0)", opt.wal)
	return g, in, idx, wd, 0, nil
}

func run(opt options) error {
	started := time.Now()
	if opt.follow != "" {
		switch {
		case opt.mutable:
			return fmt.Errorf("-follow is read-only; updates go to the primary (drop -mutable)")
		case opt.wal != "":
			return fmt.Errorf("-follow keeps no local WAL (its durable state is the primary's log); drop -wal")
		case opt.shards > 1:
			return fmt.Errorf("following a sharded primary is unsupported; -follow requires -shards=1")
		case opt.dataset != "" || opt.graph != "":
			return fmt.Errorf("-follow bootstraps from the primary's checkpoint; drop -dataset/-graph/-schema/-index")
		}
		return runFollower(opt, started)
	}
	if opt.wal != "" && !opt.mutable {
		return fmt.Errorf("-wal requires -mutable (the log records accepted updates)")
	}
	if opt.shards < 1 || opt.shards > shard.MaxShards {
		return fmt.Errorf("-shards must be between 1 and %d", shard.MaxShards)
	}
	sharded := opt.shards > 1
	if opt.wal != "" && shard.HasState(opt.wal) {
		// The partition is fixed at creation: the shard map routes every
		// node ID, so restarting with a different count would read each
		// shard's state through the wrong partition.
		ns, err := shard.Shards(opt.wal)
		if err != nil {
			return err
		}
		if sharded && ns != opt.shards {
			return fmt.Errorf("%s holds %d-shard state but -shards=%d was given; restart with -shards=%d (the partition is fixed at creation)", opt.wal, ns, opt.shards, ns)
		}
		sharded = true
		opt.shards = ns
	} else if sharded && opt.wal != "" && wal.HasState(opt.wal) {
		return fmt.Errorf("%s holds unsharded state; restart without -shards (or point -wal at a fresh directory)", opt.wal)
	}
	if sharded {
		return runSharded(opt, started)
	}
	g, in, idx, wd, baseEpoch, err := loadOrRecover(opt)
	if err != nil {
		return err
	}
	if opt.writeIndex != "" {
		xf, err := os.Create(opt.writeIndex)
		if err != nil {
			return err
		}
		err = idx.WriteJSON(xf, in)
		if cerr := xf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		log.Printf("index set persisted to %s", opt.writeIndex)
	}

	var stOpts []store.Option
	if wd != nil {
		stOpts = append(stOpts, store.WithWAL(wd, opt.fsync))
		if baseEpoch > 0 {
			stOpts = append(stOpts, store.WithBaseEpoch(baseEpoch))
		}
	}
	st := store.New(g, idx, stOpts...)
	eng, err := runtime.NewFromStore(st, runtime.Config{Workers: opt.workers})
	if err != nil {
		return err
	}
	defer eng.Close()
	mode := "read-only"
	if opt.mutable {
		mode = "mutable"
	}
	if wd != nil {
		mode += ", durable"
	}
	var ckpt func() error
	if wd != nil {
		ckpt = st.Checkpoint
	}
	shutdown := func() {
		st.Close()
		if opt.mutable {
			us := st.Stats()
			log.Printf("updates drained: epoch %d, %d applied in %d commits, %d rejected (%d violations)",
				us.Epoch, us.Applied, us.Batches, us.RejectedViolation+us.RejectedError, us.RejectedViolation)
		}
		if wd != nil {
			// Final checkpoint: the next start loads the snapshot and
			// replays nothing. Close is allowed before Checkpoint — it only
			// bars new writes.
			if err := st.Checkpoint(); err != nil {
				log.Printf("wal: shutdown checkpoint failed (log retained, recovery will replay it): %v", err)
			} else {
				log.Printf("wal: shutdown checkpoint at epoch %d", st.Epoch())
			}
			if err := wd.Close(); err != nil {
				log.Printf("wal: close: %v", err)
			}
		}
	}
	return serveHTTP(opt, eng, in, started, g.NumNodes(), g.NumEdges(), mode, st.Epoch, ckpt, shutdown, func(c *server.Config) {
		// An unsharded durable primary serves the replication endpoints.
		c.WAL = wd
	})
}

// runFollower serves a read-only replica: bootstrap the state from the
// primary's checkpoint, then replay its WAL stream in the background,
// publishing each primary epoch as it arrives. Queries, the result cache
// and revalidation all run unmodified over the replicated store; POST
// /update is refused with 403. The replication client reconnects with
// backoff on any disconnect and re-bootstraps when a checkpoint rotation
// outruns the stream; if the histories ever diverge it stops, leaving
// the daemon serving its last consistent epoch (the /stats replication
// block reports it).
func runFollower(opt options, started time.Time) error {
	in := graph.NewInterner()
	rep := replica.New(replica.Config{Primary: opt.follow, Logf: log.Printf}, in)
	bctx, bcancel := context.WithTimeout(context.Background(), 5*time.Minute)
	g, idx, epoch, err := rep.Bootstrap(bctx)
	bcancel()
	if err != nil {
		return fmt.Errorf("bootstrap from %s: %w", opt.follow, err)
	}
	log.Printf("replica: bootstrapped from %s at epoch %d (|V|=%d |E|=%d)", opt.follow, epoch, g.NumNodes(), g.NumEdges())
	var stOpts []store.Option
	if epoch > 0 {
		stOpts = append(stOpts, store.WithBaseEpoch(epoch))
	}
	st := store.New(g, idx, stOpts...)
	rep.Attach(st)
	eng, err := runtime.NewFromStore(st, runtime.Config{Workers: opt.workers})
	if err != nil {
		return err
	}
	defer eng.Close()
	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	go func() {
		if err := rep.Run(rctx); err != nil {
			log.Printf("replica: %v", err)
		}
	}()
	mode := "follower of " + opt.follow
	shutdown := func() {
		rcancel()
		st.Close()
		rs := rep.Stats()
		log.Printf("replica: stopped at epoch %d (offset %d, %d reconnects)", rs.AppliedEpoch, rs.Offset, rs.Reconnects)
	}
	return serveHTTP(opt, eng, in, started, g.NumNodes(), g.NumEdges(), mode, st.Epoch, nil, shutdown, func(c *server.Config) {
		c.Follower = true
		c.ReplicationStats = rep.Stats
	})
}

// runSharded serves a partitioned store: the graph and index set split
// across -shards stores behind a router, queries scatter/gather over
// consistent cuts, and with -wal each shard keeps its own log under the
// state directory (the SHARDMAP at its root pins the partition).
func runSharded(opt options, started time.Time) error {
	if opt.writeIndex != "" {
		return fmt.Errorf("-write-index is not supported with -shards (the index set is partitioned across the shards)")
	}
	var (
		r   *shard.Router
		in  *graph.Interner
		err error
	)
	durable := false
	if opt.wal != "" && shard.HasState(opt.wal) {
		in = graph.NewInterner()
		var info *shard.RecoverInfo
		r, info, err = shard.Recover(opt.wal, in, opt.fsync)
		if err != nil {
			return err
		}
		if info.TornSeqs > 0 {
			log.Printf("shard: rewound %d torn cross-shard update(s) a crash left partially logged", info.TornSeqs)
		}
		log.Printf("shard: recovered %d shards from %s: %d replayed records -> gsn %d, epoch vector %v",
			r.NumShards(), opt.wal, info.Records, info.GSN, info.Vector)
		if opt.dataset != "" || opt.graph != "" {
			log.Printf("shard: %s already holds state; -dataset/-graph/-schema/-index ignored", opt.wal)
		}
		durable = true
	} else {
		var g *graph.Graph
		var idx *access.IndexSet
		g, in, idx, err = load(opt)
		if err != nil {
			return err
		}
		if opt.wal != "" {
			r, err = shard.Create(opt.wal, in, g, idx, opt.shards, opt.fsync)
			if err != nil {
				return err
			}
			log.Printf("shard: initialized %d shards under %s", opt.shards, opt.wal)
			durable = true
		} else {
			r, err = shard.New(g, idx, opt.shards)
			if err != nil {
				return err
			}
		}
	}
	eng, err := runtime.NewFromRouter(r, runtime.Config{Workers: opt.workers})
	if err != nil {
		return err
	}
	defer eng.Close()
	rs := r.Stats()
	mode := fmt.Sprintf("%d shards, read-only", r.NumShards())
	if opt.mutable {
		mode = fmt.Sprintf("%d shards, mutable", r.NumShards())
	}
	if durable {
		mode += ", durable"
	}
	var ckpt func() error
	if durable {
		ckpt = r.Checkpoint
	}
	shutdown := func() {
		r.Close()
		if opt.mutable {
			us := r.Stats()
			log.Printf("updates drained: gsn %d, %d applied in %d commits, %d rejected (%d violations)",
				us.GSN, us.Applied, us.Batches, us.RejectedViolation+us.RejectedError, us.RejectedViolation)
		}
		if durable {
			if err := r.Checkpoint(); err != nil {
				log.Printf("wal: shutdown checkpoint failed (logs retained, recovery will replay them): %v", err)
			} else {
				log.Printf("wal: shutdown checkpoint at gsn %d", r.GSN())
			}
			if err := r.CloseDirs(); err != nil {
				log.Printf("wal: close: %v", err)
			}
		}
	}
	return serveHTTP(opt, eng, in, started, int(rs.Nodes), int(rs.Edges), mode, r.GSN, ckpt, shutdown, nil)
}

// serveHTTP runs the HTTP side of the daemon until a shutdown signal or a
// listener error: it mounts the server over eng, runs the periodic
// checkpoint ticker when checkpoint is non-nil, and on SIGINT/SIGTERM
// drains in-flight requests before handing control to the source-specific
// shutdown hook (close the store or router, final checkpoint, close the
// WAL directories). configure, when non-nil, adjusts the server config
// beyond the flag-derived fields (replication wiring).
func serveHTTP(opt options, eng *runtime.Engine, in *graph.Interner, started time.Time, nodes, edges int, mode string, version func() uint64, checkpoint func() error, shutdown func(), configure func(*server.Config)) error {
	if opt.timeout == 0 {
		// The operator said "no deadline"; server.Config treats zero as
		// "unset, use the library default", so translate explicitly.
		opt.timeout = -1
	}
	if opt.maxSubs == 0 {
		// The operator said "no subscriptions"; server.Config treats zero
		// as "unset, use the library default", so translate explicitly.
		opt.maxSubs = -1
	}
	cfg := server.Config{
		DefaultLimit:  opt.limit,
		MaxLimit:      opt.maxLimit,
		Timeout:       opt.timeout,
		CacheSize:     opt.cache,
		MaxSteps:      opt.maxSteps,
		EnableUpdates: opt.mutable,
		MaxSubs:       opt.maxSubs,
	}
	if configure != nil {
		configure(&cfg)
	}
	srv := server.New(eng, in, cfg)

	l, err := net.Listen("tcp", opt.addr)
	if err != nil {
		return err
	}
	log.Printf("serving |V|=%d |E|=%d, %d constraints on %s, %s (startup %s)",
		nodes, edges, eng.Schema().Count(), l.Addr(), mode, time.Since(started).Round(time.Millisecond))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if checkpoint != nil && opt.checkpoint > 0 {
		go func() {
			tick := time.NewTicker(opt.checkpoint)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					epoch := version()
					if err := checkpoint(); err != nil {
						log.Printf("wal: periodic checkpoint failed: %v", err)
					} else {
						log.Printf("wal: checkpointed at epoch %d", epoch)
					}
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining (up to %s)", opt.drain)
		sctx, cancel := context.WithTimeout(context.Background(), opt.drain)
		defer cancel()
		// Shutdown drains in-flight requests — updates included, since
		// each POST /update runs synchronously inside its handler. Only
		// then is the source closed, so no accepted update is lost.
		if err := srv.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		<-errc // Serve has returned http.ErrServerClosed
		shutdown()
		log.Printf("drained; closing engine")
		return nil
	}
}
