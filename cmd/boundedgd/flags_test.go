package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

// flagSynopsis renders the canonical -h flag listing (PrintDefaults on
// the FlagSet registerFlags populates) — the text the README embeds.
func flagSynopsis() string {
	var opt options
	fs := flag.NewFlagSet("boundedgd", flag.ContinueOnError)
	registerFlags(fs, &opt)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	fs.PrintDefaults()
	return buf.String()
}

// TestReadmeFlagSynopsis pins the README's boundedgd flags block to the
// actual flag set: the fenced code block between the two markers must be
// byte-identical to `boundedgd -h` output (minus the Usage line). Adding
// or changing a flag without regenerating the README fails here with the
// expected block in the message — paste it over the stale one.
func TestReadmeFlagSynopsis(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	const begin = "<!-- boundedgd-flags:begin -->"
	const end = "<!-- boundedgd-flags:end -->"
	text := string(readme)
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md lacks the %s / %s markers around the flag synopsis", begin, end)
	}
	block := text[i+len(begin) : j]
	// The markers wrap a ```text fence; compare its interior.
	open := strings.Index(block, "```text\n")
	if open < 0 {
		t.Fatalf("no ```text fence between the flag-synopsis markers")
	}
	block = block[open+len("```text\n"):]
	close := strings.LastIndex(block, "```")
	if close < 0 {
		t.Fatalf("unterminated flag-synopsis fence in README.md")
	}
	got := block[:close]
	if want := flagSynopsis(); got != want {
		t.Errorf("README flag synopsis is stale; regenerate the block between the markers to:\n%s", want)
	}
}
