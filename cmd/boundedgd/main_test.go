package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"boundedg/internal/access"
	"boundedg/internal/core"
	"boundedg/internal/exp"
	"boundedg/internal/graph"
	"boundedg/internal/pattern"
	"boundedg/internal/runtime"
	"boundedg/internal/server"
	"boundedg/internal/shard"
	"boundedg/internal/store"
	"boundedg/internal/workload"
)

// writeFixture emits a small dataset's graph, schema and built index set
// as the three JSON files the daemon can start from.
func writeFixture(t *testing.T) (dir string, d *workload.Dataset) {
	t.Helper()
	dir = t.TempDir()
	d, err := exp.Gen("imdb", 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := os.Create(filepath.Join(dir, "g.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.G.WriteJSON(gf); err != nil {
		t.Fatal(err)
	}
	gf.Close()
	sf, err := os.Create(filepath.Join(dir, "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Schema.WriteJSON(sf, d.In); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	idx, viols := access.Build(d.G, d.Schema)
	if viols != nil {
		t.Fatal(viols)
	}
	xf, err := os.Create(filepath.Join(dir, "idx.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.WriteJSON(xf, d.In); err != nil {
		t.Fatal(err)
	}
	xf.Close()
	return dir, d
}

// TestLoadPaths covers the three startup shapes and checks they agree:
// the generated dataset, graph+schema (index built at startup), and
// graph+persisted-index must all answer a bounded query identically.
func TestLoadPaths(t *testing.T) {
	dir, d := writeFixture(t)

	gGen, inGen, idxGen, err := load(options{dataset: "imdb", scale: 0.05, seed: 7})
	if err != nil {
		t.Fatalf("load(dataset): %v", err)
	}
	gSchema, inSchema, idxSchema, err := load(options{graph: filepath.Join(dir, "g.json"), schema: filepath.Join(dir, "a.json")})
	if err != nil {
		t.Fatalf("load(graph+schema): %v", err)
	}
	gIdx, inIdx, idxIdx, err := load(options{graph: filepath.Join(dir, "g.json"), index: filepath.Join(dir, "idx.json")})
	if err != nil {
		t.Fatalf("load(graph+index): %v", err)
	}
	if gGen.NumNodes() != gSchema.NumNodes() || gSchema.NumNodes() != gIdx.NumNodes() {
		t.Fatalf("node counts diverge: %d / %d / %d", gGen.NumNodes(), gSchema.NumNodes(), gIdx.NumNodes())
	}
	if inGen.Len() == 0 {
		t.Fatal("generated interner is empty")
	}

	// The same bounded query answered through each load path must agree.
	// Each path has its own interner and schema instance, so the query
	// text is re-parsed and re-planned per path (WriteJSON/ReadJSON keep
	// node IDs stable for tombstone-free graphs, so candidate sets are
	// comparable verbatim).
	type loaded struct {
		g   *graph.Graph
		in  *graph.Interner
		idx *access.IndexSet
	}
	paths := []loaded{{gGen, inGen, idxGen}, {gSchema, inSchema, idxSchema}, {gIdx, inIdx, idxIdx}}
	evalPath := func(l loaded, qtext string) (*core.BoundedGraph, *core.ExecStats, error) {
		q, err := pattern.Parse(qtext, l.in)
		if err != nil {
			return nil, nil, err
		}
		p, err := core.NewPlan(q, l.idx.Schema(), core.Subgraph)
		if err != nil {
			return nil, nil, err
		}
		return p.Exec(l.g, l.idx)
	}
	var answered bool
	for _, q := range workload.DefaultQueryGen.Generate(d, 20, 9) {
		if _, err := core.NewPlan(q, d.Schema, core.Subgraph); err != nil {
			continue
		}
		qtext := q.String()
		want, wantStats, err := evalPath(paths[0], qtext)
		if err != nil {
			t.Fatal(err)
		}
		for i, l := range paths[1:] {
			got, gotStats, err := evalPath(l, qtext)
			if err != nil {
				t.Fatalf("path %d exec: %v", i+1, err)
			}
			if !reflect.DeepEqual(wantStats, gotStats) {
				t.Fatalf("path %d stats diverge: %+v vs %+v", i+1, gotStats, wantStats)
			}
			if !reflect.DeepEqual(want.Cands, got.Cands) {
				t.Fatalf("path %d candidate sets diverge", i+1)
			}
		}
		answered = true
		break
	}
	if !answered {
		t.Fatal("no bounded query to compare load paths with")
	}
}

// TestLoadErrors: every invalid flag combination fails with a clear error
// instead of a partial daemon.
func TestLoadErrors(t *testing.T) {
	dir, _ := writeFixture(t)
	if err := os.WriteFile(filepath.Join(dir, "corrupt.json"), []byte(`{"schema":`), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []options{
		{},                                    // nothing given
		{graph: filepath.Join(dir, "g.json")}, // graph without schema/index
		{dataset: "nosuch"},                   // unknown generator
		{graph: filepath.Join(dir, "missing.json"), schema: filepath.Join(dir, "a.json")},
		{graph: filepath.Join(dir, "g.json"), schema: filepath.Join(dir, "missing.json")},
		{graph: filepath.Join(dir, "g.json"), index: filepath.Join(dir, "missing.json")},
		{graph: filepath.Join(dir, "g.json"), index: filepath.Join(dir, "corrupt.json")},
		{graph: filepath.Join(dir, "corrupt.json"), schema: filepath.Join(dir, "a.json")},
		{graph: filepath.Join(dir, "a.json"), schema: filepath.Join(dir, "a.json")}, // schema file as graph
		{graph: filepath.Join(dir, "g.json"), index: filepath.Join(dir, "a.json")},  // schema file as index set
	}
	for i, opt := range cases {
		if _, _, _, err := load(opt); err == nil {
			t.Fatalf("case %d (%+v): expected an error", i, opt)
		}
	}
}

// TestMutableDaemonStack composes the exact stack run() builds for
// -mutable (store → engine → server with updates enabled) on a loaded
// fixture, and drives an update-then-query round trip through the HTTP
// handler: the daemon must answer from the new epoch immediately, and a
// drained shutdown must bar further writes without breaking reads.
func TestMutableDaemonStack(t *testing.T) {
	dir, _ := writeFixture(t)
	g, in, idx, err := load(options{graph: filepath.Join(dir, "g.json"), index: filepath.Join(dir, "idx.json")})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(g, idx)
	eng, err := runtime.NewFromStore(st, runtime.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(eng, in, server.Config{EnableUpdates: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path, body string, out any) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("decode (status %d): %v", resp.StatusCode, err)
			}
		}
		return resp.StatusCode
	}

	// The award/year/movie pattern is effectively bounded under the IMDb
	// workload schema; deleting a matched movie must shrink its answer.
	q := "u1: award\nu2: year\nu3: movie\nu3 -> u1, u2"
	var before server.QueryResponse
	if st := post("/query", fmt.Sprintf(`{"pattern": %q, "limit": 10000}`, q), &before); st != http.StatusOK {
		t.Fatalf("query status %d", st)
	}
	if before.Count == 0 {
		t.Fatal("no matches to mutate")
	}
	movie := before.Matches[0][2] // Vars order: u1 award, u2 year, u3 movie
	var up server.UpdateResponse
	if st := post("/update", fmt.Sprintf(`{"del_nodes": [%d]}`, movie), &up); st != http.StatusOK {
		t.Fatalf("update status %d", st)
	}
	if up.Epoch != 1 {
		t.Fatalf("update epoch %d", up.Epoch)
	}
	var after server.QueryResponse
	if st := post("/query", fmt.Sprintf(`{"pattern": %q, "limit": 10000}`, q), &after); st != http.StatusOK {
		t.Fatalf("query status %d", st)
	}
	if after.Count >= before.Count {
		t.Fatalf("count %d did not shrink from %d after deleting a matched movie", after.Count, before.Count)
	}

	// Drained shutdown: the store refuses writes, reads keep working.
	st.Close()
	var errResp server.ErrorResponse
	if code := post("/update", `{"del_nodes": [0]}`, &errResp); code != http.StatusServiceUnavailable {
		t.Fatalf("post-close update status %d", code)
	}
	var final server.QueryResponse
	if code := post("/query", fmt.Sprintf(`{"pattern": %q, "limit": 10000}`, q), &final); code != http.StatusOK || final.Count != after.Count {
		t.Fatalf("post-close query: status %d count %d", code, final.Count)
	}
}

// TestDurableDaemonRestart drives the full -mutable -wal lifecycle run()
// is built from: first boot seeds the WAL directory, updates mutate the
// graph through HTTP, the process "crashes" (no shutdown checkpoint), and
// a second boot with the same flags recovers by replay — the graph-source
// flags must be ignored, the post-update answers preserved, and epoch
// numbering must continue where the crash left off.
func TestDurableDaemonRestart(t *testing.T) {
	dir, _ := writeFixture(t)
	walDir := filepath.Join(dir, "wal")
	opts := options{
		graph:   filepath.Join(dir, "g.json"),
		index:   filepath.Join(dir, "idx.json"),
		wal:     walDir,
		mutable: true,
		fsync:   true,
	}

	boot := func() (*store.Store, *server.Server, *httptest.Server, func()) {
		t.Helper()
		g, in, idx, wd, base, err := loadOrRecover(opts)
		if err != nil {
			t.Fatal(err)
		}
		stOpts := []store.Option{store.WithWAL(wd, true)}
		if base > 0 {
			stOpts = append(stOpts, store.WithBaseEpoch(base))
		}
		st := store.New(g, idx, stOpts...)
		eng, err := runtime.NewFromStore(st, runtime.Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(eng, in, server.Config{EnableUpdates: true})
		ts := httptest.NewServer(srv.Handler())
		return st, srv, ts, func() {
			ts.Close()
			eng.Close()
			wd.Close()
		}
	}
	post := func(ts *httptest.Server, path, body string, out any) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("decode (status %d): %v", resp.StatusCode, err)
			}
		}
		return resp.StatusCode
	}
	q := "u1: award\nu2: year\nu3: movie\nu3 -> u1, u2"
	query := func(ts *httptest.Server) server.QueryResponse {
		t.Helper()
		var r server.QueryResponse
		if st := post(ts, "/query", fmt.Sprintf(`{"pattern": %q, "limit": 10000}`, q), &r); st != http.StatusOK {
			t.Fatalf("query status %d", st)
		}
		return r
	}

	// Boot 1: seed the WAL dir, mutate, crash without a checkpoint.
	_, _, ts1, stop1 := boot()
	before := query(ts1)
	if before.Count == 0 {
		t.Fatal("no matches to mutate")
	}
	movie := before.Matches[0][2]
	var up server.UpdateResponse
	if st := post(ts1, "/update", fmt.Sprintf(`{"del_nodes": [%d]}`, movie), &up); st != http.StatusOK {
		t.Fatalf("update status %d", st)
	}
	if up.Epoch != 1 || up.LogOffset == 0 {
		t.Fatalf("update response %+v", up)
	}
	want := query(ts1)
	stop1() // kill: log holds the update, snapshot is still epoch 0

	// Boot 2: same flags; must recover by replay, not reload g.json.
	st2, _, ts2, stop2 := boot()
	defer stop2()
	if st2.Epoch() != 1 {
		t.Fatalf("recovered store at epoch %d, want 1", st2.Epoch())
	}
	got := query(ts2)
	if got.Count != want.Count || !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Fatalf("recovered answers diverge: %d matches vs %d", got.Count, want.Count)
	}
	// Epoch numbering continues across the restart.
	var up2 server.UpdateResponse
	if st := post(ts2, "/update", `{"add_nodes": [{"label": "movie"}]}`, &up2); st != http.StatusOK {
		t.Fatalf("post-recovery update status %d", st)
	}
	if up2.Epoch != 2 {
		t.Fatalf("post-recovery epoch %d, want 2", up2.Epoch)
	}
	// A checkpointed shutdown must leave nothing to replay on boot 3.
	if err := st2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	stop2()
	g3, _, _, wd3, base3, err := loadOrRecover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer wd3.Close()
	if base3 != 2 {
		t.Fatalf("boot 3 base epoch %d, want 2", base3)
	}
	if ls := wd3.Log().Stats(); ls.Records != 0 {
		t.Fatalf("boot 3 replayed %d records, want 0 after checkpoint", ls.Records)
	}
	if n := g3.NumNodes(); n == 0 {
		t.Fatal("boot 3 lost the graph")
	}
}

// TestWALRequiresMutable pins the flag validation: a WAL without updates
// is a configuration error, not a silent read-only log.
func TestWALRequiresMutable(t *testing.T) {
	err := run(options{wal: t.TempDir(), graph: "unused"})
	if err == nil || !strings.Contains(err.Error(), "-mutable") {
		t.Fatalf("err = %v, want -mutable requirement", err)
	}
}

// TestShardedFlagValidation pins the -shards cross-checks: out-of-range
// counts, -write-index, and — because the partition is fixed at creation
// — any mismatch between the flag and what the state directory actually
// holds must refuse to start with an error naming the fix.
func TestShardedFlagValidation(t *testing.T) {
	dir, _ := writeFixture(t)
	gflag := filepath.Join(dir, "g.json")
	iflag := filepath.Join(dir, "idx.json")

	if err := run(options{shards: 0, graph: gflag, index: iflag}); err == nil || !strings.Contains(err.Error(), "-shards must be between") {
		t.Fatalf("shards=0: err = %v", err)
	}
	if err := run(options{shards: shard.MaxShards + 1, graph: gflag, index: iflag}); err == nil || !strings.Contains(err.Error(), "-shards must be between") {
		t.Fatalf("shards over max: err = %v", err)
	}
	if err := run(options{shards: 2, writeIndex: filepath.Join(dir, "out.json"), graph: gflag, index: iflag}); err == nil || !strings.Contains(err.Error(), "-write-index") {
		t.Fatalf("write-index with shards: err = %v", err)
	}

	// A directory seeded unsharded refuses -shards.
	unshardedDir := filepath.Join(dir, "wal-unsharded")
	_, _, _, wd, _, err := loadOrRecover(options{graph: gflag, index: iflag, wal: unshardedDir, mutable: true})
	if err != nil {
		t.Fatal(err)
	}
	wd.Close()
	if err := run(options{shards: 2, wal: unshardedDir, mutable: true}); err == nil || !strings.Contains(err.Error(), "unsharded state") {
		t.Fatalf("unsharded state with -shards: err = %v", err)
	}

	// A directory created N-sharded refuses any other -shards value.
	shardedDir := filepath.Join(dir, "wal-sharded")
	g, in, idx, err := load(options{graph: gflag, index: iflag})
	if err != nil {
		t.Fatal(err)
	}
	r, err := shard.Create(shardedDir, in, g, idx, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if err := r.CloseDirs(); err != nil {
		t.Fatal(err)
	}
	err = run(options{shards: 2, wal: shardedDir, mutable: true})
	if err == nil || !strings.Contains(err.Error(), "holds 4-shard state") || !strings.Contains(err.Error(), "-shards=4") {
		t.Fatalf("shard-count mismatch: err = %v", err)
	}
}

// TestShardedDaemonRestart drives the -shards -wal lifecycle runSharded()
// is built from: first boot partitions the fixture and seeds one WAL
// directory per shard, updates commit across shards through HTTP, the
// process "crashes" (no shutdown checkpoint), and a second boot recovers
// every shard and reconciles the vector — answers preserved, GSN
// numbering continuing, and /stats reporting the per-shard blocks. A
// checkpointed shutdown must leave nothing to replay on boot 3.
func TestShardedDaemonRestart(t *testing.T) {
	dir, _ := writeFixture(t)
	walDir := filepath.Join(dir, "shards")
	const nshards = 3

	var lastInfo *shard.RecoverInfo
	boot := func() (*shard.Router, *httptest.Server, func()) {
		t.Helper()
		var r *shard.Router
		if shard.HasState(walDir) {
			in := graph.NewInterner()
			var err error
			r, lastInfo, err = shard.Recover(walDir, in, true)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := runtime.NewFromRouter(r, runtime.Config{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			srv := server.New(eng, in, server.Config{EnableUpdates: true})
			ts := httptest.NewServer(srv.Handler())
			return r, ts, func() { ts.Close(); eng.Close(); r.CloseDirs() }
		}
		g, in, idx, err := load(options{graph: filepath.Join(dir, "g.json"), index: filepath.Join(dir, "idx.json")})
		if err != nil {
			t.Fatal(err)
		}
		r, err = shard.Create(walDir, in, g, idx, nshards, true)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := runtime.NewFromRouter(r, runtime.Config{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(eng, in, server.Config{EnableUpdates: true})
		ts := httptest.NewServer(srv.Handler())
		return r, ts, func() { ts.Close(); eng.Close(); r.CloseDirs() }
	}
	post := func(ts *httptest.Server, path, body string, out any) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("decode (status %d): %v", resp.StatusCode, err)
			}
		}
		return resp.StatusCode
	}
	q := "u1: award\nu2: year\nu3: movie\nu3 -> u1, u2"
	query := func(ts *httptest.Server) server.QueryResponse {
		t.Helper()
		var r server.QueryResponse
		if st := post(ts, "/query", fmt.Sprintf(`{"pattern": %q, "limit": 10000}`, q), &r); st != http.StatusOK {
			t.Fatalf("query status %d", st)
		}
		return r
	}

	// Boot 1: partition + seed, mutate, crash without a checkpoint.
	_, ts1, stop1 := boot()
	before := query(ts1)
	if before.Count == 0 {
		t.Fatal("no matches to mutate")
	}
	if len(before.Vector) != nshards {
		t.Fatalf("query vector %v, want %d entries", before.Vector, nshards)
	}
	movie := before.Matches[0][2]
	var up server.UpdateResponse
	if st := post(ts1, "/update", fmt.Sprintf(`{"del_nodes": [%d]}`, movie), &up); st != http.StatusOK {
		t.Fatalf("update status %d", st)
	}
	if up.Epoch != 1 || len(up.Vector) != nshards || len(up.ShardLogOffsets) != nshards {
		t.Fatalf("update response %+v", up)
	}
	logged := 0
	for _, off := range up.ShardLogOffsets {
		if off > 0 {
			logged++
		}
	}
	if logged == 0 {
		t.Fatalf("no shard reported a log offset: %v", up.ShardLogOffsets)
	}
	want := query(ts1)
	stop1() // kill: shard logs hold the update, snapshots are still epoch 0

	// Boot 2: recover every shard, reconcile the vector.
	r2, ts2, stop2 := boot()
	if lastInfo == nil || lastInfo.GSN != 1 {
		t.Fatalf("recovered info %+v, want gsn 1", lastInfo)
	}
	got := query(ts2)
	if got.Count != want.Count || !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Fatalf("recovered answers diverge: %d matches vs %d", got.Count, want.Count)
	}
	var stats server.StatsResponse
	resp, err := http.Get(ts2.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Epoch != 1 || len(stats.Shards) != nshards || len(stats.Vector) != nshards {
		t.Fatalf("sharded stats %+v", stats)
	}
	for i, ss := range stats.Shards {
		if ss.Shard != i || !ss.WAL.Enabled {
			t.Fatalf("shard stats block %d: %+v", i, ss)
		}
	}
	// GSN numbering continues across the restart.
	var up2 server.UpdateResponse
	if st := post(ts2, "/update", `{"add_nodes": [{"label": "movie"}]}`, &up2); st != http.StatusOK {
		t.Fatalf("post-recovery update status %d", st)
	}
	if up2.Epoch != 2 {
		t.Fatalf("post-recovery gsn %d, want 2", up2.Epoch)
	}
	// A checkpointed shutdown must leave nothing to replay on boot 3.
	if err := r2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	stop2()

	_, ts3, stop3 := boot()
	defer stop3()
	if lastInfo.Records != 0 {
		t.Fatalf("boot 3 replayed %d records, want 0 after checkpoint", lastInfo.Records)
	}
	if lastInfo.GSN != 2 {
		t.Fatalf("boot 3 gsn %d, want 2", lastInfo.GSN)
	}
	final := query(ts3)
	if final.Count != want.Count {
		t.Fatalf("boot 3 answers diverge: %d matches vs %d", final.Count, want.Count)
	}
}

// TestSubscriptionDaemonDrain is the graceful-shutdown regression for
// continuous queries at the daemon level: with live subscription streams
// open — one actively reading, two stalled — the drain path run() wires
// (server.Shutdown under the -drain budget, then engine close) must
// complete promptly instead of waiting on consumers, the bug class the
// WAL streaming endpoint hit in an earlier release.
func TestSubscriptionDaemonDrain(t *testing.T) {
	dir, _ := writeFixture(t)
	g, in, idx, err := load(options{graph: filepath.Join(dir, "g.json"), index: filepath.Join(dir, "idx.json")})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New(g, idx)
	eng, err := runtime.NewFromStore(st, runtime.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(eng, in, server.Config{
		EnableUpdates: true,
		MaxSubs:       8,
		SubHeartbeat:  20 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stream := &http.Client{Transport: ts.Client().Transport} // no timeout: stream bodies live long
	var drained [3]*http.Response
	for i := range drained {
		body := `{"pattern": "u1: award\nu2: year\nu3: movie\nu3 -> u1, u2"}`
		resp, err := http.Post(ts.URL+"/subscribe", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sr server.SubscribeResponse
		if derr := json.NewDecoder(resp.Body).Decode(&sr); derr != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("subscribe %d: status %d err %v", i, resp.StatusCode, derr)
		}
		resp.Body.Close()
		sresp, err := stream.Get(ts.URL + sr.Events)
		if err != nil {
			t.Fatal(err)
		}
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("stream %d: status %d", i, sresp.StatusCode)
		}
		drained[i] = sresp
	}
	readerDone := make(chan struct{})
	go func() { // one live reader; the other two streams stay stalled
		defer close(readerDone)
		io.Copy(io.Discard, drained[0].Body)
	}()
	defer drained[1].Body.Close()
	defer drained[2].Body.Close()

	// Mid-delivery churn, then the drain run() performs on SIGINT/SIGTERM.
	resp, err := http.Post(ts.URL+"/update", "application/json", strings.NewReader(`{"add_edges": []}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("drain with live subscription streams: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %s, over the budget", elapsed)
	}
	select {
	case <-readerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("the reading subscriber never saw its stream end")
	}
	drained[0].Body.Close()
}
